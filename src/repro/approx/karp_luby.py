"""Karp-Luby Monte-Carlo approximation of ws-set confidence (paper, Section 7).

The confidence of a ws-set is a weighted DNF-counting problem: each descriptor
is a clause, each possible world a model.  The Karp-Luby estimator samples

1. a descriptor ``d_j`` with probability proportional to its weight
   ``P(d_j)``, then
2. a world ``w`` from the conditional distribution ``P(· | d_j)`` (fix the
   assignments of ``d_j``, sample the remaining *relevant* variables
   independently from the world table),

and outputs ``Z · 1[j = min{k : w ⊨ d_k}]`` where ``Z = Σ_k P(d_k)``
(the "unbiased estimator" variant described in Vazirani's book, which the
paper uses because it converges faster than the original 1983 estimator).
Its expectation is exactly the confidence.  Dividing by ``Z`` gives a 0/1
variable, so the estimator can be driven by the optimal stopping rule of
Dagum, Karp, Luby and Ross exactly as in the paper's ``kl(ε)`` baseline.

Sampling substrate
------------------
By default the estimator runs on the **interned** representation of the world
table (:meth:`~repro.db.world_table.WorldTable.interned`): clauses are sorted
tuples of packed ``(variable_id << shift) | value_id`` ints, clause selection
walks a precomputed cumulative-weight array, worlds are ``variable_id ->
value_id`` maps sampled through per-variable cumulative arrays, and the
"is ``j`` the first covering clause" test is a scan over packed ints — no
string hashing, no per-draw distribution dict rebuilds.  The pre-interning
plain-dict sampler is kept behind ``interned=False`` as an ablation baseline
for ``benchmarks/bench_interned_substrate.py``.
"""

from __future__ import annotations

import random
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import TYPE_CHECKING

from repro.approx.stopping import (
    StoppingRuleResult,
    karp_luby_iteration_bound,
    optimal_stopping_rule,
)
from repro.core.wsset import WSSet
from repro.obs.trace import span as _span

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import Variable, WorldTable
else:
    Variable = object

#: Clause counts at which the interned estimator computes the clause-weight
#: products with the numpy kernel of :mod:`repro.core.vector` (when numpy is
#: installed) instead of a python loop.
_VECTOR_WEIGHTS_THRESHOLD = 32


@dataclass
class ApproximationResult:
    """An approximate confidence value together with the work performed."""

    estimate: float
    iterations: int
    epsilon: float | None = None
    delta: float | None = None
    method: str = "karp-luby"


class KarpLubyEstimator:
    """Reusable Karp-Luby estimator for one ws-set over one world table.

    Construction pre-computes the clause weights, the cumulative distribution
    used for clause sampling, and (on the interned substrate) the packed
    clause tuples and per-variable cumulative weight arrays needed for the
    fast "is ``j`` the first covering clause" test.
    """

    def __init__(
        self,
        ws_set: WSSet,
        world_table: "WorldTable",
        *,
        seed: int | None = None,
        estimator: str = "first-clause",
        interned: bool = True,
    ) -> None:
        if estimator not in ("first-clause", "coverage"):
            raise ValueError(
                f"unknown estimator {estimator!r}; use 'first-clause' or 'coverage'"
            )
        self.world_table = world_table
        self.estimator = estimator
        self.interned = interned
        self.rng = random.Random(seed)
        if interned:
            self._setup_interned(ws_set, world_table)
            self._clause_count = len(self._clauses)
            self._trivially_true = any(not clause for clause in self._clauses)
        else:
            # The plain-dict clause copies are only needed by the legacy
            # sampling internals; the interned substrate never builds them.
            self.descriptors = [dict(d.items()) for d in ws_set]
            self._clause_count = len(self.descriptors)
            self._trivially_true = any(not d for d in self.descriptors)
            self.weights = [d.probability(world_table) for d in ws_set]
            variables: set = set()
            for descriptor in self.descriptors:
                variables.update(descriptor)
            #: Variables relevant to the event; all others integrate out.
            self.variables: tuple = tuple(
                v for v in world_table.variables if v in variables
            )
        self.total_weight = float(sum(self.weights))
        self._cumulative_weights = list(accumulate(self.weights))

    def _setup_interned(self, ws_set: WSSet, world_table: "WorldTable") -> None:
        space = world_table.interned()
        self._space = space
        self._shift = space.shift
        self._value_mask = space.mask
        clauses = []
        for descriptor in ws_set:
            packed = space.intern_items(descriptor.items())
            if packed is None:
                # Out-of-domain assignment: the clause holds in no world and
                # carries weight zero, so it is never sampled and never covers.
                continue
            clauses.append(packed)
        self._clauses: list[tuple] = clauses
        self.weights = self._clause_weights(clauses, space)
        # Relevant variables (dense ids, ascending = world-table order) and
        # their cumulative weight arrays for O(log r) value sampling.
        relevant = sorted({p >> self._shift for clause in clauses for p in clause})
        self._relevant_ids = relevant
        self._cumulative_by_id: dict[int, list[float]] = {
            variable_id: list(accumulate(space.weights[variable_id]))
            for variable_id in relevant
        }
        self.variables = tuple(space.variables[i] for i in relevant)

    @staticmethod
    def _clause_weights(clauses: list[tuple], space) -> list[float]:
        """``P(d)`` per packed clause (numpy-folded for large clause sets)."""
        if len(clauses) >= _VECTOR_WEIGHTS_THRESHOLD:
            from repro.core.vector import (
                HAVE_NUMPY,
                descriptor_weights,
                flatten_weights,
            )

            if HAVE_NUMPY:
                table = flatten_weights(space.weights, space.mask)
                return [
                    float(w)
                    for w in descriptor_weights(
                        clauses, space.shift, space.mask, table
                    )
                ]
        shift = space.shift
        mask = space.mask
        weights = space.weights
        products = []
        for clause in clauses:
            product = 1.0
            for packed in clause:
                product *= weights[packed >> shift][packed & mask]
            products.append(product)
        return products

    # ------------------------------------------------------------------
    # Sampling primitives
    # ------------------------------------------------------------------
    def sample_once(self) -> float:
        """One draw of the estimator, already normalised to ``[0, 1]``.

        Multiply by :attr:`total_weight` to get the unnormalised Karp-Luby
        variable whose expectation is the confidence.
        """
        if not self._clause_count or self.total_weight == 0.0:
            return 0.0
        if self._trivially_true:
            return 1.0 / self.total_weight if self.total_weight else 0.0
        clause_index = self._sample_clause()
        if self.interned:
            if self.estimator == "first-clause":
                return 1.0 if self._is_first_covering_interned(clause_index) else 0.0
            return 1.0 / self._coverage_count_interned(clause_index)
        if self.estimator == "first-clause":
            # Only the variables of clauses 0..clause_index-1 can influence the
            # outcome, so sample them lazily: the expected per-iteration cost
            # drops from O(#relevant variables) to O(earlier clause sizes).
            return 1.0 if self._is_first_covering(clause_index) else 0.0
        world = self._sample_world(self.descriptors[clause_index])
        coverage = self._coverage_count(world)
        return 1.0 / coverage

    def estimate(self, iterations: int) -> ApproximationResult:
        """Average ``iterations`` draws of the (unnormalised) estimator."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if not self._clause_count:
            return ApproximationResult(0.0, 0, method=self._method_name())
        total = sum(self.sample_once() for _ in range(iterations))
        estimate = self.total_weight * total / iterations
        return ApproximationResult(estimate, iterations, method=self._method_name())

    def estimate_with_bound(self, epsilon: float, delta: float) -> ApproximationResult:
        """(ε, δ)-approximation with the classic fixed Karp-Luby iteration bound."""
        iterations = karp_luby_iteration_bound(self._clause_count, epsilon, delta)
        if iterations == 0:
            return ApproximationResult(0.0, 0, epsilon, delta, self._method_name())
        result = self.estimate(iterations)
        return ApproximationResult(
            result.estimate, result.iterations, epsilon, delta, self._method_name()
        )

    def estimate_optimal(
        self,
        epsilon: float,
        delta: float,
        *,
        max_iterations: int | None = 2_000_000,
    ) -> ApproximationResult:
        """(ε, δ)-approximation driven by the optimal stopping rule (DKLR 2000).

        This is the configuration used by the paper's ``kl(ε)`` measurements:
        the stopping rule determines a sufficient number of iterations (within
        a constant factor from optimal) from the observed samples themselves.
        """
        if not self._clause_count or self.total_weight == 0.0:
            return ApproximationResult(0.0, 0, epsilon, delta, self._method_name())
        rule: StoppingRuleResult = optimal_stopping_rule(
            self.sample_once, epsilon, delta, max_iterations=max_iterations
        )
        return ApproximationResult(
            self.total_weight * rule.estimate,
            rule.iterations,
            epsilon,
            delta,
            self._method_name(),
        )

    # ------------------------------------------------------------------
    # Internals — shared
    # ------------------------------------------------------------------
    def _method_name(self) -> str:
        return f"karp-luby[{self.estimator}]"

    def _sample_clause(self) -> int:
        """One clause index, proportional to clause weight (cumulative walk)."""
        cumulative = self._cumulative_weights
        return bisect(
            cumulative,
            self.rng.random() * cumulative[-1],
            0,
            len(cumulative) - 1,
        )

    # ------------------------------------------------------------------
    # Internals — interned substrate
    # ------------------------------------------------------------------
    def _sample_value_id(self, variable_id: int) -> int:
        """Sample one value id of a variable through its cumulative weights."""
        cumulative = self._cumulative_by_id[variable_id]
        return bisect(
            cumulative,
            self.rng.random() * cumulative[-1],
            0,
            len(cumulative) - 1,
        )

    def _is_first_covering_interned(self, clause_index: int) -> bool:
        """Sample a world from P(· | clause) lazily; is the clause the first covering one?"""
        shift = self._shift
        value_mask = self._value_mask
        clauses = self._clauses
        clause = clauses[clause_index]
        world = {p >> shift: p & value_mask for p in clause}
        sample = self._sample_value_id
        for index in range(clause_index):
            for p in clauses[index]:
                variable_id = p >> shift
                assigned = world.get(variable_id)
                if assigned is None:
                    assigned = sample(variable_id)
                    world[variable_id] = assigned
                if assigned != p & value_mask:
                    break
            else:
                return False
        return True

    def _coverage_count_interned(self, clause_index: int) -> int:
        """Number of clauses covering a full world sampled from P(· | clause)."""
        shift = self._shift
        value_mask = self._value_mask
        clause = self._clauses[clause_index]
        world = {p >> shift: p & value_mask for p in clause}
        for variable_id in self._relevant_ids:
            if variable_id not in world:
                world[variable_id] = self._sample_value_id(variable_id)
        count = 0
        for candidate in self._clauses:
            for p in candidate:
                if world[p >> shift] != p & value_mask:
                    break
            else:
                count += 1
        if count == 0:
            raise AssertionError("sampled world is not covered by any clause")
        return count

    # ------------------------------------------------------------------
    # Internals — legacy plain-dict substrate (ablation baseline)
    # ------------------------------------------------------------------
    def _sample_world(self, clause: dict) -> dict:
        world = dict(clause)
        for variable in self.variables:
            if variable not in world:
                world[variable] = self.world_table.sample_value(self.rng, variable)
        return world

    def _first_covering(self, world: dict) -> int:
        for index, descriptor in enumerate(self.descriptors):
            if all(world.get(v) == value for v, value in descriptor.items()):
                return index
        raise AssertionError("sampled world is not covered by any clause")

    def _is_first_covering(self, clause_index: int) -> bool:
        """Sample a world from P(· | clause) lazily; is the clause the first covering one?"""
        clause = self.descriptors[clause_index]
        world = dict(clause)
        sample_value = self.world_table.sample_value
        rng = self.rng
        for descriptor in self.descriptors[:clause_index]:
            covers = True
            for variable, value in descriptor.items():
                assigned = world.get(variable)
                if assigned is None:
                    assigned = sample_value(rng, variable)
                    world[variable] = assigned
                if assigned != value:
                    covers = False
                    break
            if covers:
                return False
        return True

    def _coverage_count(self, world: dict) -> int:
        count = 0
        for descriptor in self.descriptors:
            if all(world.get(v) == value for v, value in descriptor.items()):
                count += 1
        if count == 0:
            raise AssertionError("sampled world is not covered by any clause")
        return count


def karp_luby_confidence(
    ws_set: WSSet,
    world_table: "WorldTable",
    epsilon: float = 0.1,
    delta: float = 0.01,
    *,
    seed: int | None = None,
    use_optimal_stopping: bool = True,
    estimator: str = "first-clause",
    max_iterations: int | None = 2_000_000,
    interned: bool = True,
) -> ApproximationResult:
    """One-shot (ε, δ)-approximate confidence of a ws-set.

    With ``use_optimal_stopping`` (the default, matching the paper) the number
    of iterations is decided by the Dagum-Karp-Luby-Ross stopping rule;
    otherwise the classic ``⌈4 m ln(2/δ)/ε²⌉`` bound is used.
    ``max_iterations`` caps the work of the stopping rule (the observed sample
    mean is returned when the cap is hit), analogous to the wall-clock caps
    the paper places on its experiments.  ``interned=False`` selects the
    pre-interning plain-dict sampler (ablation baseline).
    """
    if ws_set.contains_universal:
        return ApproximationResult(1.0, 0, epsilon, delta, "karp-luby")
    kl = KarpLubyEstimator(
        ws_set, world_table, seed=seed, estimator=estimator, interned=interned
    )
    with _span("karp_luby_rounds", epsilon=epsilon, delta=delta) as sp:
        if use_optimal_stopping:
            result = kl.estimate_optimal(
                epsilon, delta, max_iterations=max_iterations
            )
        else:
            result = kl.estimate_with_bound(epsilon, delta)
        if sp.enabled:
            sp.set(iterations=result.iterations)
        return result
