"""CircuitRecorder: replay the interned engine's decomposition into a DAG.

The recorder is an explicit-stack walker over the *same* decomposition the
:class:`~repro.core.interned.InternedEngine` would run — same entry
simplifications, same per-step subsumption, same component split, same
variable-selection dispatch (shared via
:meth:`InternedEngine.select_variable_id`), same memoisation policy — but
instead of folding probabilities it emits :class:`~repro.circuit.circuit.
Circuit` nodes in post-order (children before parents), which makes the node
list topologically sorted for free.

Two deliberate differences from an evaluation run:

* **zero-weight completeness** — the engine skips branches whose weight is
  ``0.0`` at evaluation time; the recorder expands them anyway, because under
  the re-weightings a circuit exists to answer they may become reachable.
  At the recording weights these branches contribute exact ``+0.0`` terms,
  which leaves every IEEE-754 accumulation bit-unchanged — the recorded
  circuit still evaluates bit-identically to the engine.  For the same
  reason the shared ``T`` branch is recorded whenever absent domain values
  *exist* (the engine gates on their current summed weight being positive).
* **memoisation always mirrors the engine's policy** — with memoisation on
  (the default) structurally repeated sub-ws-sets become shared DAG nodes
  under the engine's own canonical key, so the circuit is exactly as
  compact as the engine's memo was effective; with memoisation off the
  recorder doesn't share either, keeping the recorded accumulation orders
  aligned with what the engine would actually compute.

Compilation is budgeted like a computation: the recorder ticks the engine's
:class:`~repro.core.decompose.Budget` once per expanded node, so a
pathological compile raises :class:`~repro.errors.BudgetExceededError`
instead of hanging.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuit.circuit import CONST, IE, PROD, SUM, Circuit
from repro.core.interned import (
    _CLOSED_FORM_LIMIT,
    connected_components_interned,
    count_occurrences_interned,
    merge_interned,
    remove_subsumed_interned,
    split_on_variable_interned,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.interned import InternedEngine, PackedDescriptor


class _RecorderFrame:
    """One suspended ⊗- or ⊕-node: children pending expansion, ids built."""

    __slots__ = ("kind", "pending", "index", "built", "key", "meta")

    def __init__(self, kind, pending, key, meta=None):
        self.kind = kind
        self.pending = pending
        self.index = 0
        self.built: list[int] = []
        self.key = key
        self.meta = meta


class CircuitRecorder:
    """Record one ws-set's decomposition over an engine's space and config.

    A recorder is single-use: :meth:`record` consumes it and returns the
    :class:`Circuit`.  The engine is only read — its space, config,
    heuristic dispatch and budget — never mutated (the budget ticks are the
    exception, and exactly the point: compiles are budgeted computations).
    """

    def __init__(self, engine: "InternedEngine") -> None:
        self._engine = engine
        space = engine.space
        self._space = space
        self._shift: int = space.shift
        self._mask: int = space.mask
        config = engine.config
        self._use_independent_partitioning = config.use_independent_partitioning
        self._subsumption_every_step = config.subsumption_every_step
        self._memoize = engine.memoize
        self._fold_threshold = engine.weight_fold_threshold
        self._nodes: list[tuple] = []
        #: Engine-canonical key (sorted descriptor tuple) -> node id, for the
        #: big sub-ws-sets the engine would memoise.
        self._memo: dict[tuple, int] = {}
        #: Ordered descriptor tuple -> node id for closed-form leaves.  Keyed
        #: by *input order*, not canonically: the inclusion-exclusion subset
        #: enumeration follows the input order, and two orderings of the same
        #: set accumulate in different sequences (different last bits).
        self._ie_memo: dict[tuple, int] = {}
        self._const_ids: dict[float, int] = {}
        self._mask_cache: dict = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def record(self, interned: "list[PackedDescriptor]") -> Circuit:
        """Compile an already-simplified interned ws-set into a circuit.

        ``interned`` must have been produced the way the engine's own entry
        path produces it — interned against this engine's space, then
        deduplicated and (per config) subsumption-simplified — so the
        recorded traversal starts from exactly the engine's root ws-set.
        """
        descriptors = list(interned)
        stack: list[_RecorderFrame] = []
        node = self._expand(descriptors, stack, False)
        while stack:
            frame = stack[-1]
            if node is not None:
                frame.built.append(node)
            if frame.index < len(frame.pending):
                child = frame.pending[frame.index]
                frame.index += 1
                node = self._expand(child, stack, frame.kind == PROD)
            else:
                stack.pop()
                node = self._finish(frame)
        assert node is not None
        shift = self._shift
        variable_ids = frozenset(
            packed >> shift for descriptor in descriptors for packed in descriptor
        )
        return Circuit(
            self._space,
            self._nodes,
            node,
            tuple(descriptors),
            variable_ids,
        )

    # ------------------------------------------------------------------
    # Node emission
    # ------------------------------------------------------------------
    def _emit(self, node: tuple) -> int:
        self._nodes.append(node)
        return len(self._nodes) - 1

    def _const(self, value: float) -> int:
        index = self._const_ids.get(value)
        if index is None:
            index = self._emit((CONST, value))
            self._const_ids[value] = index
        return index

    # ------------------------------------------------------------------
    # The mirrored _expand
    # ------------------------------------------------------------------
    def _expand(
        self,
        descriptors: "list[PackedDescriptor]",
        stack: list[_RecorderFrame],
        from_independent: bool,
    ) -> int | None:
        """Resolve a ws-set to a node id, or push a frame and return ``None``.

        Step for step the engine's ``_expand``: leaves, the closed-form
        limit, per-step subsumption, the memo probe, the component split and
        the ⊕-split all happen in the same order on the same inputs, so the
        recorded structure is the evaluated structure.
        """
        self._engine.budget.tick()
        if not descriptors:
            return self._const(0.0)
        if () in descriptors:  # the nullary descriptor: the ∅ leaf
            return self._const(1.0)

        if len(descriptors) <= _CLOSED_FORM_LIMIT:
            return self._closed_form(descriptors)

        if self._subsumption_every_step and not from_independent:
            descriptors = remove_subsumed_interned(descriptors)

        key = None
        if self._memoize:
            key = tuple(sorted(descriptors))
            cached = self._memo.get(key)
            if cached is not None:
                return cached

        shift = self._shift
        if self._use_independent_partitioning and not from_independent:
            components = connected_components_interned(
                descriptors, shift, self._mask_cache
            )
            if len(components) > 1:
                stack.append(_RecorderFrame(PROD, components, key))
                return None

        # ⊕-node: eliminate the variable the engine would.
        occurrences = count_occurrences_interned(descriptors, shift, self._mask)
        variable_id = self._engine.select_variable_id(occurrences, len(descriptors))
        by_value, unmentioned = split_on_variable_interned(
            descriptors, variable_id, shift
        )
        domain_size = len(self._space.weights[variable_id])
        use_fold = (
            self._fold_threshold is not None and domain_size >= self._fold_threshold
        )
        present = sorted(by_value)
        certain: list[int] = []
        branch_ids: list[int] = []
        pending: list[list] = []
        for value_id in present:
            branch = by_value[value_id]
            if () in branch:
                # A descriptor consisted solely of this assignment: the
                # branch ws-set contains ∅ and has probability one.
                certain.append(value_id)
            else:
                if unmentioned:
                    branch_set = set(branch)
                    branch = branch + [t for t in unmentioned if t not in branch_set]
                branch_ids.append(value_id)
                pending.append(branch)
        absent_ids = tuple(
            value_id for value_id in range(domain_size) if value_id not in by_value
        )
        # The shared T branch exists whenever absent values *exist* — not
        # merely when their current weights sum to something positive, since
        # a re-weighting may revive them.
        has_absent = bool(absent_ids) and bool(unmentioned)
        if has_absent:
            pending.append(unmentioned)
        meta = (
            variable_id,
            tuple(certain),
            tuple(branch_ids),
            absent_ids,
            has_absent,
            use_fold,
            tuple(present),
        )
        stack.append(_RecorderFrame(SUM, pending, key, meta))
        return None

    def _finish(self, frame: _RecorderFrame) -> int:
        if frame.kind == PROD:
            node: tuple = (PROD, tuple(frame.built))
        else:
            (variable_id, certain, branch_ids, absent_ids, has_absent,
             use_fold, present) = frame.meta
            if has_absent:
                absent_child: int | None = frame.built[-1]
                branches = tuple(zip(branch_ids, frame.built[:-1]))
            else:
                absent_child = None
                branches = tuple(zip(branch_ids, frame.built))
            node = (
                SUM,
                variable_id,
                certain,
                branches,
                absent_ids,
                absent_child,
                use_fold,
                present,
            )
        index = self._emit(node)
        if frame.key is not None:
            self._memo[frame.key] = index
        return index

    # ------------------------------------------------------------------
    # Closed-form (inclusion-exclusion) leaves
    # ------------------------------------------------------------------
    def _closed_form(self, descriptors: "list[PackedDescriptor]") -> int:
        """An IE node mirroring ``_small_probability``'s subset enumeration."""
        ordered = tuple(descriptors)
        cached = self._ie_memo.get(ordered)
        if cached is not None:
            return cached
        count = len(descriptors)
        terms: list[tuple[bool, tuple]] = []
        if count == 1:
            terms.append((True, descriptors[0]))
        else:
            shift = self._shift
            conjunction: list = [None] * (1 << count)
            for subset in range(1, 1 << count):
                low = subset & -subset
                rest = subset ^ low
                if rest == 0:
                    conjoined = descriptors[low.bit_length() - 1]
                else:
                    prev = conjunction[rest]
                    if prev is None:
                        continue
                    conjoined = merge_interned(
                        prev, descriptors[low.bit_length() - 1], shift
                    )
                    if conjoined is None:
                        continue
                conjunction[subset] = conjoined
                terms.append((bool(subset.bit_count() & 1), conjoined))
        index = self._emit((IE, tuple(terms)))
        self._ie_memo[ordered] = index
        return index
