"""Sensor monitoring: conditioning a stream of uncertain readings on evidence.

Probabilistic databases are a natural fit for sensor data (one of the
application areas listed in the paper's introduction): each reading is only
probably correct, and later evidence — a technician's inspection, a physical
constraint — should *condition* the database rather than being bolted on at
query time.

Scenario
--------
Rooms are monitored by smoke sensors.  For every reading the sensor pipeline
stores an uncertain discretised temperature level (attribute-level
uncertainty: one variable per reading with alternatives LOW / HIGH) and a
tuple-independent "smoke detected" event with a false-positive-prone
probability.  We then assert evidence:

1. a physical constraint — a room cannot simultaneously have a LOW
   temperature reading and a smoke detection (smoke implies heat);
2. a technician reports that at least one of rooms A or B really had smoke.

and watch the posterior probability of "room C is on fire" change.

Run with::

    python examples/sensor_monitoring.py
"""

from __future__ import annotations

from repro import DenialConstraint, ExactConfig, ProbabilisticDatabase, WSDescriptor
from repro.db.algebra import project, select
from repro.db.predicates import attr
from repro.db.tuple_independent import tuple_independent_relation


def build_database() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    w = db.world_table

    readings = db.create_relation("readings", ("room", "level"))
    temperature_priors = {
        "A": {"LOW": 0.4, "HIGH": 0.6},
        "B": {"LOW": 0.7, "HIGH": 0.3},
        "C": {"LOW": 0.8, "HIGH": 0.2},
    }
    for room, distribution in temperature_priors.items():
        variable = f"temp_{room}"
        w.add_variable(variable, distribution)
        for level in distribution:
            readings.add(WSDescriptor({variable: level}), (room, level))

    smoke_rows = [
        (("A",), 0.5),
        (("B",), 0.4),
        (("C",), 0.25),
    ]
    db.add_relation(
        tuple_independent_relation("smoke", ("room",), smoke_rows, w, variable_prefix="smoke_")
    )
    return db


def fire_risk(db: ProbabilisticDatabase, room: str) -> float:
    """P(room has a HIGH reading and a smoke detection) — our "fire" event."""
    hot = select(db.relation("readings"),
                 (attr("room") == room) & (attr("level") == "HIGH"))
    smoke = select(db.relation("smoke"), attr("room") == room)
    event = hot.descriptors().intersect(smoke.descriptors())
    return db.confidence(event)


def main() -> None:
    db = build_database()
    config = ExactConfig.indve("minlog")

    print("== Prior fire risk per room ==")
    for room in ("A", "B", "C"):
        print(f"  room {room}: {fire_risk(db, room):.4f}")
    print()

    # Evidence 1: smoke implies heat — deny (reading LOW) ∧ (smoke in same room).
    smoke_implies_heat = DenialConstraint(
        relations=("readings", "smoke"),
        predicate=(attr("1.room") == attr("2.room")) & (attr("1.level") == "LOW"),
    )
    summary = db.assert_condition(smoke_implies_heat, config)
    print(f"asserted 'smoke implies heat' "
          f"(prior probability {summary.confidence:.4f})")

    # Evidence 2: the technician confirms smoke in room A or room B.
    confirmed = select(
        db.relation("smoke"), (attr("room") == "A") | (attr("room") == "B")
    )
    summary = db.assert_condition(confirmed.descriptors(), config)
    print(f"asserted 'smoke in A or B confirmed' "
          f"(prior probability {summary.confidence:.4f})")
    print()

    print("== Posterior fire risk per room ==")
    for room in ("A", "B", "C"):
        print(f"  room {room}: {fire_risk(db, room):.4f}")
    print()

    print("== Posterior smoke-detection confidences ==")
    smoke = project(db.relation("smoke"), ["room"])
    for row in sorted(db.tuple_confidences(smoke), key=lambda r: r.values):
        print(f"  room {row.values[0]}: {row.confidence:.4f}")


if __name__ == "__main__":
    main()
