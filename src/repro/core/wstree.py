"""World-set trees (ws-trees), Definition 4.1 of the paper.

A ws-tree is a tree whose inner nodes are either

* ⊗ (:class:`IndependentNode`): its children use pairwise disjoint variable
  sets and are therefore probabilistically independent; the node represents
  the *union* of the children's world-sets;
* ⊕ (:class:`VariableNode`): associated with one variable; each outgoing edge
  is annotated with a different assignment of that variable, so the children
  represent mutually exclusive world-sets;

and whose leaves are either ∅ (:class:`LeafNode`, the full world-set of the
remaining variables) or ⊥ (:class:`BottomNode`, the empty world-set).

The world-set represented by a ws-tree is the ws-set consisting of the edge
annotations of all root-to-leaf paths (excluding paths ending in ⊥).  The
structural constraints of Definition 4.1 are checked by :meth:`WSTree.validate`.

Probability computation on ws-trees (Figure 7) is implemented by
:meth:`WSTree.probability`; the fused, non-materialising version lives in
:mod:`repro.core.probability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.descriptors import WSDescriptor
from repro.core.wsset import WSSet
from repro.errors import WSTreeError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import Value, Variable, WorldTable
else:
    Variable = object
    Value = object


class WSTree:
    """Abstract base class of ws-tree nodes."""

    __slots__ = ()

    # -- semantics ------------------------------------------------------
    def to_wsset(self) -> WSSet:
        """The ws-set of root-to-leaf path annotations (the tree's world-set)."""
        return WSSet(WSDescriptor(path) for path in self._paths({}))

    def probability(self, world_table: "WorldTable") -> float:
        """Exact probability of the represented world-set (Figure 7)."""
        raise NotImplementedError

    def _paths(self, prefix: dict) -> list[dict]:
        raise NotImplementedError

    # -- structure ------------------------------------------------------
    def variables(self) -> frozenset[Variable]:
        """Variables occurring anywhere in this subtree."""
        raise NotImplementedError

    def node_count(self) -> int:
        """Number of nodes in this subtree (leaves included)."""
        raise NotImplementedError

    def depth(self) -> int:
        """Length of the longest root-to-leaf path, in edges."""
        raise NotImplementedError

    def validate(self, world_table: "WorldTable | None" = None) -> None:
        """Check the structural constraints of Definition 4.1.

        Raises :class:`~repro.errors.WSTreeError` when a variable repeats on a
        root-to-leaf path, when a ⊕-node's edges do not assign distinct values
        of its variable, when ⊗-children share variables, or (if a world table
        is given) when an edge annotation is inconsistent with the table.
        """
        self._validate(frozenset(), world_table)

    def _validate(
        self, seen: frozenset[Variable], world_table: "WorldTable | None"
    ) -> None:
        raise NotImplementedError

    def pretty(self, indent: str = "") -> str:
        """An indented multi-line rendering of the tree (for debugging and docs)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class LeafNode(WSTree):
    """The ∅ leaf: represents the full world-set (probability one)."""

    def probability(self, world_table: "WorldTable") -> float:
        return 1.0

    def _paths(self, prefix: dict) -> list[dict]:
        return [dict(prefix)]

    def variables(self) -> frozenset[Variable]:
        return frozenset()

    def node_count(self) -> int:
        return 1

    def depth(self) -> int:
        return 0

    def _validate(self, seen, world_table) -> None:
        return None

    def pretty(self, indent: str = "") -> str:
        return f"{indent}∅"


@dataclass(frozen=True)
class BottomNode(WSTree):
    """The ⊥ leaf: represents the empty world-set (probability zero)."""

    def probability(self, world_table: "WorldTable") -> float:
        return 0.0

    def _paths(self, prefix: dict) -> list[dict]:
        return []

    def variables(self) -> frozenset[Variable]:
        return frozenset()

    def node_count(self) -> int:
        return 1

    def depth(self) -> int:
        return 0

    def _validate(self, seen, world_table) -> None:
        return None

    def pretty(self, indent: str = "") -> str:
        return f"{indent}⊥"


@dataclass(frozen=True)
class IndependentNode(WSTree):
    """A ⊗-node: children over pairwise disjoint variable sets.

    The node's world-set is the union of the children's world-sets; because
    the children are independent, ``P = 1 - Π (1 - P_i)`` (Figure 7).
    """

    children: tuple[WSTree, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))
        if len(self.children) < 2:
            raise WSTreeError("an ⊗-node needs at least two children")

    def probability(self, world_table: "WorldTable") -> float:
        complement = 1.0
        for child in self.children:
            complement *= 1.0 - child.probability(world_table)
        return 1.0 - complement

    def _paths(self, prefix: dict) -> list[dict]:
        paths: list[dict] = []
        for child in self.children:
            paths.extend(child._paths(prefix))
        return paths

    def variables(self) -> frozenset[Variable]:
        result: set[Variable] = set()
        for child in self.children:
            result.update(child.variables())
        return frozenset(result)

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    def depth(self) -> int:
        return 1 + max(child.depth() for child in self.children)

    def _validate(self, seen, world_table) -> None:
        used: set[Variable] = set()
        for child in self.children:
            child_vars = child.variables()
            overlap = used & set(child_vars)
            if overlap:
                raise WSTreeError(
                    f"⊗-children share variables {sorted(map(repr, overlap))}"
                )
            used.update(child_vars)
            child._validate(seen, world_table)

    def pretty(self, indent: str = "") -> str:
        lines = [f"{indent}⊗"]
        for child in self.children:
            lines.append(child.pretty(indent + "  "))
        return "\n".join(lines)


@dataclass(frozen=True)
class VariableNode(WSTree):
    """A ⊕-node: branches on the alternative assignments of one variable.

    ``branches`` maps each covered value of ``variable`` to a child subtree;
    the child's incoming edge is annotated with the weighted assignment
    ``variable -> value``.  Values of the variable's domain that are missing
    here behave as edges into ⊥ (probability zero contribution).
    """

    variable: Variable
    branches: tuple[tuple[Value, WSTree], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "branches", tuple(self.branches))
        values = [value for value, _ in self.branches]
        if len(values) != len(set(values)):
            raise WSTreeError(
                f"⊕-node on {self.variable!r} has duplicate value annotations"
            )
        if not values:
            raise WSTreeError(f"⊕-node on {self.variable!r} has no branches")

    def probability(self, world_table: "WorldTable") -> float:
        total = 0.0
        for value, child in self.branches:
            weight = world_table.probability(self.variable, value)
            total += weight * child.probability(world_table)
        return total

    def _paths(self, prefix: dict) -> list[dict]:
        paths: list[dict] = []
        for value, child in self.branches:
            extended = dict(prefix)
            extended[self.variable] = value
            paths.extend(child._paths(extended))
        return paths

    def variables(self) -> frozenset[Variable]:
        result: set[Variable] = {self.variable}
        for _, child in self.branches:
            result.update(child.variables())
        return frozenset(result)

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for _, child in self.branches)

    def depth(self) -> int:
        return 1 + max(child.depth() for _, child in self.branches)

    def _validate(self, seen, world_table) -> None:
        if self.variable in seen:
            raise WSTreeError(
                f"variable {self.variable!r} occurs twice on a root-to-leaf path"
            )
        if world_table is not None:
            domain = set(world_table.domain(self.variable))
            for value, _ in self.branches:
                if value not in domain:
                    raise WSTreeError(
                        f"edge annotation {self.variable!r} -> {value!r} is not in the domain"
                    )
        extended = seen | {self.variable}
        for value, child in self.branches:
            if self.variable in child.variables():
                raise WSTreeError(
                    f"variable {self.variable!r} occurs below its own ⊕-node"
                )
            child._validate(extended, world_table)

    def pretty(self, indent: str = "") -> str:
        lines = [f"{indent}⊕ {self.variable!r}"]
        for value, child in self.branches:
            lines.append(f"{indent}  ├─ {self.variable!r} → {value!r}")
            lines.append(child.pretty(indent + "  │   "))
        return "\n".join(lines)


#: Shared singleton leaves; ws-trees are immutable so sharing is safe.
LEAF = LeafNode()
BOTTOM = BottomNode()
