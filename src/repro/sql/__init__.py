"""A small SQL front end for the probabilistic database (MayBMS-style).

The paper's examples are phrased in SQL extended with a ``conf()`` aggregate
(e.g. ``select SSN, conf(SSN) from R where NAME = 'Bill'``).  This subpackage
implements the subset needed to run every query string appearing in the paper:

* ``SELECT`` with attribute lists, ``*`` or ``conf()`` / ``conf(attrs)``;
* ``FROM`` lists with optional aliases (tuple variables), giving
  consistency-aware joins over U-relations;
* ``WHERE`` with ``AND`` / ``OR`` / ``NOT``, the six comparison operators and
  ``BETWEEN``, over attributes and literals;
* ``ASSERT <boolean query>`` — the conditioning statement: the database is
  conditioned on the worlds in which the Boolean query is true.

Entry point: :func:`repro.sql.executor.execute` (re-exported here).
"""

from repro.sql.lexer import tokenize, Token, TokenType
from repro.sql.parser import parse
from repro.sql.executor import execute, execute_script, split_statements, QueryResult

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "execute",
    "execute_script",
    "split_statements",
    "QueryResult",
]
