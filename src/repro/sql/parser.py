"""Recursive-descent parser for the SQL subset.

Grammar (informally)::

    statement   := select | "ASSERT" select
    select      := "SELECT" select_list "FROM" table_list [ "WHERE" condition ]
    select_list := "*" | item ("," item)*
    item        := conf | operand [ ["AS"] alias ]
    conf        := "CONF" "(" [ column ("," column)* ] ")" [ ["AS"] alias ]
    table_list  := table ("," table)*
    table       := name [ ["AS"] alias ]
    condition   := or_expr
    or_expr     := and_expr ("OR" and_expr)*
    and_expr    := not_expr ("AND" not_expr)*
    not_expr    := "NOT" not_expr | primary
    primary     := "(" condition ")" | operand comparison
    comparison  := op operand | "BETWEEN" operand "AND" operand
    operand     := column | literal
    column      := name ["." name]
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import (
    AssertStatement,
    Between,
    BooleanExpression,
    ColumnRef,
    Comparison,
    ConfCall,
    Literal,
    ParsedStatement,
    SelectColumn,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_SYMBOLS = ("=", "!=", "<", "<=", ">", ">=")


def parse(text: str) -> ParsedStatement:
    """Parse one SQL statement (SELECT or ASSERT)."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.expect_end()
    return ParsedStatement(statement=statement, text=text)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token utilities -------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        self._position += 1
        return token

    def accept_keyword(self, keyword: str) -> bool:
        if self.current.is_keyword(keyword):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise SQLSyntaxError(
                f"expected {keyword}, found {self.current.value!r}",
                position=self.current.position,
            )

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise SQLSyntaxError(
                f"expected {symbol!r}, found {self.current.value!r}",
                position=self.current.position,
            )

    def expect_identifier(self) -> str:
        token = self.current
        if token.type is not TokenType.IDENTIFIER:
            raise SQLSyntaxError(
                f"expected an identifier, found {token.value!r}", position=token.position
            )
        self.advance()
        return str(token.value)

    def expect_end(self) -> None:
        if self.current.type is not TokenType.END:
            raise SQLSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                position=self.current.position,
            )

    # -- grammar ----------------------------------------------------------
    def parse_statement(self):
        if self.accept_keyword("ASSERT"):
            return AssertStatement(self.parse_select())
        return self.parse_select()

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        columns = self.parse_select_list()
        self.expect_keyword("FROM")
        tables = self.parse_table_list()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        return SelectStatement(columns=columns, tables=tables, where=where)

    def parse_select_list(self):
        if self.accept_symbol("*"):
            return Star()
        columns = [self.parse_select_item()]
        while self.accept_symbol(","):
            columns.append(self.parse_select_item())
        return tuple(columns)

    def parse_select_item(self) -> SelectColumn:
        if self.current.is_keyword("CONF"):
            self.advance()
            self.expect_symbol("(")
            arguments: list[ColumnRef] = []
            if not self.current.is_symbol(")"):
                arguments.append(self._expect_column())
                while self.accept_symbol(","):
                    arguments.append(self._expect_column())
            self.expect_symbol(")")
            alias = self._parse_alias()
            return SelectColumn(ConfCall(tuple(arguments), alias=alias), alias=alias)
        expression = self.parse_operand()
        alias = self._parse_alias()
        return SelectColumn(expression, alias=alias)

    def _parse_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_identifier()
        if self.current.type is TokenType.IDENTIFIER:
            return self.expect_identifier()
        return None

    def parse_table_list(self) -> tuple[TableRef, ...]:
        tables = [self.parse_table()]
        while self.accept_symbol(","):
            tables.append(self.parse_table())
        return tuple(tables)

    def parse_table(self) -> TableRef:
        name = self.expect_identifier()
        alias = self._parse_alias()
        return TableRef(name=name, alias=alias)

    # -- conditions --------------------------------------------------------
    def parse_condition(self):
        return self.parse_or()

    def parse_or(self):
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpression("or", tuple(operands))

    def parse_and(self):
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpression("and", tuple(operands))

    def parse_not(self):
        if self.accept_keyword("NOT"):
            return BooleanExpression("not", (self.parse_not(),))
        return self.parse_primary()

    def parse_primary(self):
        if self.accept_symbol("("):
            condition = self.parse_condition()
            self.expect_symbol(")")
            return condition
        left = self.parse_operand()
        if self.accept_keyword("BETWEEN"):
            low = self.parse_operand()
            self.expect_keyword("AND")
            high = self.parse_operand()
            return Between(left, low, high)
        for symbol in ("<=", ">=", "!=", "=", "<", ">"):
            if self.accept_symbol(symbol):
                return Comparison(left, symbol, self.parse_operand())
        if isinstance(left, Literal) and isinstance(left.value, bool):
            # Bare boolean literal condition, e.g. ``where true``.
            return left
        raise SQLSyntaxError(
            f"expected a comparison operator, found {self.current.value!r}",
            position=self.current.position,
        )

    # -- operands ------------------------------------------------------------
    def parse_operand(self):
        token = self.current
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.type is TokenType.IDENTIFIER:
            return self._expect_column()
        raise SQLSyntaxError(
            f"expected a column or literal, found {token.value!r}", position=token.position
        )

    def _expect_column(self) -> ColumnRef:
        first = self.expect_identifier()
        if self.accept_symbol("."):
            second = self.expect_identifier()
            return ColumnRef(name=second, qualifier=first)
        return ColumnRef(name=first)


_COMPARISONS = frozenset(_COMPARISON_SYMBOLS)
