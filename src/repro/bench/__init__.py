"""Benchmark harness reproducing the experimental section of the paper.

* :mod:`repro.bench.runner` — timing utilities, method registries and
  parameter sweeps;
* :mod:`repro.bench.figures` — one entry point per table/figure of Section 7
  (Figure 10 through Figure 13 plus the ablations called out in DESIGN.md),
  each returning a :class:`~repro.bench.runner.SweepResult`;
* :mod:`repro.bench.reporting` — plain-text and Markdown rendering of the
  results, used to fill ``EXPERIMENTS.md``.

The ``benchmarks/`` directory at the repository root exposes the same
experiments as ``pytest-benchmark`` targets; this package is the shared
engine, also usable directly::

    python -m repro.bench.figures --figure 11a
"""

from repro.bench.runner import (
    MeasuredPoint,
    Series,
    SweepResult,
    measure,
    method_registry,
)
from repro.bench.reporting import format_sweep_result, format_table, to_markdown

__all__ = [
    "MeasuredPoint",
    "Series",
    "SweepResult",
    "measure",
    "method_registry",
    "format_sweep_result",
    "format_table",
    "to_markdown",
]
