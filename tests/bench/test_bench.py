"""Tests for the benchmark harness (runner, reporting, per-figure definitions).

The figure functions are exercised at tiny parameter settings so that the
whole module runs in a few seconds; what is checked is the plumbing — every
requested method produces a measurement for every instance, tables render,
timeouts are reported — not the timings themselves.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    conditioning_overhead,
    conditioning_overhead_table,
    figure10,
    figure10_table,
    figure11a,
    figure12,
    figure13,
)
from repro.bench.reporting import (
    format_sweep_result,
    format_table,
    summarize_shape,
    sweep_to_dict,
    to_markdown,
    write_sweep_json,
)
from repro.bench.runner import method_registry, run_sweep
from repro.workloads.hard import HardCaseParameters, generate_hard_instance


class TestRunner:
    def test_method_registry_names(self):
        methods = method_registry(
            epsilons=(0.1,), include_exact=("indve(minlog)", "ve(minmax)"), include_we=True
        )
        assert set(methods) == {"indve(minlog)", "ve(minmax)", "kl(e0.1)", "we"}

    def test_method_registry_rejects_unknown_exact_method(self):
        with pytest.raises(ValueError):
            method_registry(include_exact=("speedy",))

    def test_run_sweep_collects_every_point(self):
        instance = generate_hard_instance(HardCaseParameters(8, 2, 2, 6, seed=0))
        methods = method_registry(include_exact=("indve(minlog)", "ve(minlog)"))
        result = run_sweep(
            "tiny", "ws-set size",
            [(6, instance.ws_set, instance.world_table)] * 2,
            methods,
        )
        assert result.methods() == ["indve(minlog)", "ve(minlog)"]
        for series in result.series:
            assert len(series.points) == 2
            assert all(point.seconds >= 0 for point in series.points)
            assert all(point.value is not None for point in series.points)
        assert result.series_by_method("ve(minlog)").xs() == [6, 6]
        with pytest.raises(KeyError):
            result.series_by_method("nope")

    def test_timeouts_are_flagged(self):
        instance = generate_hard_instance(HardCaseParameters(20, 2, 4, 60, seed=0))
        methods = method_registry(include_exact=("indve(minlog)",), max_calls=3)
        result = run_sweep(
            "budgeted", "ws-set size",
            [(60, instance.ws_set, instance.world_table)],
            methods,
        )
        point = result.series[0].points[0]
        assert point.timed_out


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([("a", 1.0), ("bb", 123.456)], headers=("name", "seconds"))
        assert "name" in text and "bb" in text

    def test_markdown_table(self):
        text = to_markdown([("a", 1)], headers=("x", "y"))
        assert text.splitlines()[0] == "| x | y |"

    def test_sweep_to_dict_and_json_report(self, tmp_path):
        import json

        instance = generate_hard_instance(HardCaseParameters(8, 2, 2, 5, seed=1))
        methods = method_registry(include_exact=("indve(minlog)", "ve(minlog)"))
        result = run_sweep(
            "engines", "ws-set size",
            [(5, instance.ws_set, instance.world_table)],
            methods,
        )
        payload = sweep_to_dict(result)
        assert payload["title"] == "engines"
        assert {series["method"] for series in payload["series"]} == {
            "indve(minlog)", "ve(minlog)",
        }
        point = payload["series"][0]["points"][0]
        assert point["x"] == 5 and point["seconds"] >= 0 and not point["timed_out"]

        path = write_sweep_json(
            result, tmp_path / "report.json", extra={"speedup": {"overall": 1.0}}
        )
        loaded = json.loads(path.read_text())
        assert loaded["title"] == "engines"
        assert loaded["speedup"] == {"overall": 1.0}

    def test_format_sweep_result_and_summary(self):
        instance = generate_hard_instance(HardCaseParameters(8, 2, 2, 5, seed=1))
        methods = method_registry(include_exact=("indve(minlog)",))
        result = run_sweep(
            "tiny", "ws-set size",
            [(5, instance.ws_set, instance.world_table)],
            methods,
            time_limit=10,
        )
        rendering = format_sweep_result(result)
        assert "tiny" in rendering and "indve(minlog) (s)" in rendering
        assert "fastest method" in summarize_shape(result)


class TestFigureDefinitions:
    def test_figure10_rows_and_table(self):
        rows = figure10(scale_factors=(0.0001,))
        assert {row.query for row in rows} == {"Q1", "Q2"}
        assert all(row.input_variables > 0 for row in rows)
        assert "Size of ws-set" in figure10_table(rows)

    def test_figure11a_tiny(self):
        result = figure11a(
            sizes=(8, 16), num_variables=8, alternatives=2, descriptor_length=2,
            time_limit=10.0, kl_max_iterations=500,
        )
        assert len(result.methods()) == 4
        assert all(len(series.points) == 2 for series in result.series)

    def test_figure12_tiny(self):
        result = figure12(
            sizes=(4, 8), num_variables=8, alternatives=2, descriptor_length=2,
            time_limit=10.0, kl_max_iterations=500,
        )
        assert "Figure 12" in result.title

    def test_figure13_tiny(self):
        result = figure13(
            sizes=(4, 8), num_variables=20, alternatives=2, descriptor_length=2,
            time_limit=10.0,
        )
        assert set(result.methods()) == {"indve(minlog)", "indve(minmax)"}

    def test_conditioning_overhead_rows(self):
        rows = conditioning_overhead(sizes=(5, 10), num_variables=30)
        assert [size for size, _, _ in rows] == [5, 10]
        table = conditioning_overhead_table(rows)
        assert "overhead factor" in table
