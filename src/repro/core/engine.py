"""A reusable handle on one exact-confidence engine (the query-service seam).

Every public entry point used to rebuild an engine per call — interning the
world table, allocating a fresh memo cache, arming a fresh budget — and throw
all of it away afterwards, so nothing was shared between the many ``conf()``
queries a real workload issues against one world table.  An
:class:`EngineHandle` extracts that per-call setup from
:func:`repro.core.probability.probability` into a long-lived object:

* **one engine, many computations** — the interned representation and the
  memo cache (component cache) survive across calls, so repeated and
  overlapping queries hit warm state;
* **per-computation budgets** — each computation re-arms a fresh
  :class:`~repro.core.decompose.Budget` (call-count and wall-clock limits
  restart per query, as a service expects), optionally overridden per call;
* **staleness tracking** — the handle watches the world table's version
  counter (and identity, for conditioning, which replaces the table) and
  transparently rebuilds the engine when the table changed, retiring the
  statistics of the old engine into its aggregates;
* **aggregate statistics** — frames (recursive calls), memo hits, memo size,
  evictions and accumulated wall time across the handle's whole lifetime,
  snapshotted as :class:`EngineStats`.

:class:`repro.db.session.Session` builds exactly one handle and routes every
exact computation — single queries, batched per-tuple confidences, SQL
execution, the exact leg of the hybrid method — through it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.decompose import Budget
from repro.core.probability import ExactConfig, make_engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.wsset import WSSet
    from repro.db.world_table import WorldTable


@dataclass(frozen=True)
class EngineStats:
    """Aggregate statistics of an :class:`EngineHandle` over its lifetime.

    ``frames`` counts engine recursion frames (decomposition nodes expanded),
    ``memo_hits`` sub-ws-sets answered from the component cache, and
    ``wall_time`` the summed wall-clock seconds of all computations; all three
    include the contributions of engines retired by a rebuild.  ``memo_size``
    and ``memo_evictions`` describe the *current* engine's cache.
    """

    computations: int = 0
    frames: int = 0
    memo_hits: int = 0
    memo_size: int = 0
    memo_evictions: int = 0
    wall_time: float = 0.0
    engine_rebuilds: int = 0


class EngineHandle:
    """One long-lived exact engine with memo reuse across computations."""

    def __init__(
        self,
        world_table: "WorldTable",
        config: ExactConfig | None = None,
    ) -> None:
        self.config = config or ExactConfig()
        self._world_table = world_table
        self._engine = None
        self._engine_version: int | None = None
        self._computations = 0
        self._wall_time = 0.0
        self._rebuilds = 0
        # Frames / hits of engines discarded by rebuilds, folded into stats.
        self._retired_frames = 0
        self._retired_hits = 0

    # ------------------------------------------------------------------
    # Binding / staleness
    # ------------------------------------------------------------------
    @property
    def world_table(self) -> "WorldTable":
        return self._world_table

    def rebind(self, world_table: "WorldTable") -> None:
        """Point the handle at a (possibly) different world table.

        Conditioning replaces a database's world table wholesale; sessions
        call this before every computation so the next :meth:`engine` access
        rebuilds against the current table.  Rebinding to the same object is
        free.
        """
        if world_table is not self._world_table:
            self._world_table = world_table
            self._retire()

    def invalidate(self) -> None:
        """Drop the current engine (and its memo); it is rebuilt lazily."""
        self._retire()

    def _retire(self) -> None:
        if self._engine is not None:
            self._retired_frames += self._engine.stats.recursive_calls
            self._retired_hits += self._engine.cache_hits
            self._engine = None
            self._rebuilds += 1

    def engine(self):
        """The current engine, rebuilt if the world table was mutated."""
        version = self._world_table.version
        if self._engine is None or version != self._engine_version:
            self._retire()
            self._engine = make_engine(
                self._world_table,
                self.config,
                record_elimination_order=False,
            )
            self._engine_version = version
        return self._engine

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def probability(
        self,
        ws_set: "WSSet",
        *,
        max_calls: int | None = None,
        time_limit: float | None = None,
    ) -> float:
        """Exact probability of a ws-set through the shared engine.

        ``max_calls`` / ``time_limit`` override the config's budget for this
        one computation; either way the budget is re-armed fresh, so limits
        apply per computation, not to the handle's lifetime.  Raises
        :class:`~repro.errors.BudgetExceededError` like the one-shot API.
        """
        return self._timed(
            lambda engine: engine.compute_wsset(ws_set), max_calls, time_limit
        )

    def probability_of_descriptors(
        self,
        descriptors: list[dict],
        *,
        max_calls: int | None = None,
        time_limit: float | None = None,
    ) -> float:
        """Like :meth:`probability` for plain-dict descriptors."""
        return self._timed(
            lambda engine: engine.compute(descriptors), max_calls, time_limit
        )

    def _timed(self, run, max_calls: int | None, time_limit: float | None) -> float:
        engine = self.engine()
        engine.reset_budget(
            Budget(
                max_calls if max_calls is not None else self.config.max_calls,
                time_limit if time_limit is not None else self.config.time_limit,
            )
        )
        started = time.perf_counter()
        try:
            return run(engine)
        finally:
            self._wall_time += time.perf_counter() - started
            self._computations += 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def snapshot(self) -> EngineStats:
        """Aggregate statistics of all computations so far."""
        engine = self._engine
        frames = self._retired_frames
        hits = self._retired_hits
        memo_size = 0
        evictions = 0
        if engine is not None:
            frames += engine.stats.recursive_calls
            hits += engine.cache_hits
            memo_size = len(engine.cache)
            evictions = getattr(engine.cache, "evictions", 0)
        return EngineStats(
            computations=self._computations,
            frames=frames,
            memo_hits=hits,
            memo_size=memo_size,
            memo_evictions=evictions,
            wall_time=self._wall_time,
            engine_rebuilds=self._rebuilds,
        )

    def __repr__(self) -> str:
        stats = self.snapshot()
        return (
            f"EngineHandle({self.config.engine!r}, computations={stats.computations}, "
            f"memo={stats.memo_size} entries, {stats.memo_hits} hits)"
        )
