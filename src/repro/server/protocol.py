"""The confidence server's wire protocol: length-prefixed JSON frames.

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  Requests carry a protocol version,
a client-chosen correlation id, an operation name and its arguments::

    {"v": 1, "id": 7, "op": "confidence", "args": {...}}

Responses echo the id and carry either a result or a structured error::

    {"v": 1, "id": 7, "ok": true,  "result": {...}}
    {"v": 1, "id": 7, "ok": false, "error": {"code": "budget-exceeded",
                                             "message": "..."}}

Operations (see ``docs/protocol.md`` for the full schemas):

``ping``
    Liveness check; returns the server's protocol version.
``health`` (since version 3)
    Serving health: admission-queue depth, in-flight count, shed totals and
    a coarse ``status`` (``ok`` / ``overloaded`` / ``draining``).  Never
    queued behind computations, so it answers even under full load.
``stats``
    Engine statistics (:meth:`repro.core.engine.EngineStats.as_dict`) plus
    server-level counters.
``metrics`` (since version 3)
    A merged :meth:`repro.obs.metrics.MetricsRegistry.snapshot` of the
    server's and the engine handle's instruments: per-op and per-method
    latency histograms (p50/p90/p99 derivable client-side via
    :func:`repro.obs.metrics.quantile_from_snapshot`), admission-queue
    depth, in-flight and shed/deadline counters.  Like ``health`` it is
    answered without queueing, so it works under full load.
``confidence``
    One :class:`~repro.db.session.ConfidenceRequest`
    (:meth:`~repro.db.session.ConfidenceRequest.to_payload` form, including
    per-request budgets, seeds and ε/δ) answered with a
    :class:`~repro.db.session.ConfidenceResult` payload.
``confidence_many`` (since version 2)
    A batch of confidence requests answered in one round trip; the server
    fans the batch out across its session pool, so with a process executor
    the requests genuinely overlap.  Results come back in request order.
``confidence_batch``
    Per-tuple ``conf()`` of a named relation through
    :meth:`~repro.db.session.Session.confidence_batch`.
``what_if`` (since version 3)
    A what-if sweep: one target, one variable, many probability points,
    answered in a single frame through a compiled lineage circuit
    (:meth:`~repro.db.session.Session.what_if`) — the decomposition runs
    once server-side, every point is a circuit re-evaluation.
``shard_map`` (since version 4)
    The cluster partition this server was booted with: its own shard index,
    the shard count and the full :class:`~repro.cluster.partition.ShardMap`
    payload (variable -> shard ownership plus per-relation component
    placement).  Every shard of a cluster serves the identical map, so a
    coordinator can bootstrap from whichever shard answers first.  Like
    ``health`` it is answered without queueing; a server booted without
    shard info answers ``{"sharded": false}``.
``execute`` / ``execute_script``
    SQL through the shared session; results travel as
    :func:`query_result_to_payload` objects.

Error frames map the :mod:`repro.errors` hierarchy onto stable string codes
(:data:`ERROR_CODES`); :func:`exception_for` reverses the mapping on the
client so a remote :class:`~repro.errors.BudgetExceededError` raises a local
:class:`~repro.errors.BudgetExceededError`.  Frames that are malformed,
oversized or of an unsupported version are answered with protocol error
frames (codes ``malformed-frame``, ``frame-too-large``,
``unsupported-version``, ``unknown-op``) without closing the connection.

This module is transport-agnostic except for two small helpers per transport
flavour: :func:`read_frame` / :func:`write_frame` for ``asyncio`` streams and
:func:`recv_frame` / :func:`send_frame` for blocking sockets.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import struct
from typing import TYPE_CHECKING

from repro.errors import (
    BudgetExceededError,
    ConditioningError,
    DeadlineExceededError,
    DescriptorError,
    InconsistentDescriptorError,
    InvalidDistributionError,
    OverloadedError,
    ProtocolError,
    QueryError,
    RemoteError,
    ReproError,
    SchemaError,
    ShardUnavailableError,
    SQLSyntaxError,
    UnknownAttributeError,
    UnknownRelationError,
    UnknownValueError,
    UnknownVariableError,
    WorkerPoolError,
    WorldTableError,
    ZeroProbabilityConditionError,
)
from repro.testing import faults as _faults

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.executor import QueryResult

#: Version the clients of this build send on every frame.
PROTOCOL_VERSION = 4

#: Versions the server answers.  Version 1 (PR 4) lacks ``confidence_many``
#: but is otherwise identical, so v1 clients keep working unchanged; a v1
#: frame asking for a v2-only operation gets the same ``unknown-op`` error an
#: actual v1 server would send.  Version 3 adds the ``health``
#: and ``what_if`` operations, the per-request ``deadline_ms`` frame field, and the
#: ``deadline-exceeded`` / ``overloaded`` error codes; v1/v2 frames never see
#: any of them (``deadline_ms`` on an old frame is ignored, and old clients
#: degrade unknown codes to :class:`~repro.errors.RemoteError`).  Version 4
#: (this build) adds the cluster surface: the ``shard_map`` operation, the
#: ``shard`` section of ``health`` payloads and the ``shard-unavailable``
#: error code a cluster coordinator raises for a dead shard.
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: Default TCP port of ``python -m repro.server`` (the paper's year).
DEFAULT_PORT = 2008

#: Default upper bound on one frame's payload size (requests and responses).
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024

#: The 4-byte big-endian unsigned length prefix of every frame.
HEADER = struct.Struct(">I")

#: Operations the server understands.
OPS = (
    "ping",
    "health",
    "stats",
    "metrics",
    "shard_map",
    "confidence",
    "confidence_many",
    "confidence_batch",
    "what_if",
    "execute",
    "execute_script",
)

#: Operations that exist only from the given protocol version on.
OPS_SINCE_VERSION = {
    "confidence_many": 2,
    "health": 3,
    "what_if": 3,
    "metrics": 3,
    "shard_map": 4,
}

#: Operations a client may safely retry after a transport failure.
#:
#: Retry safety is about *server state*, not determinism: the read-only
#: operations (liveness, statistics, every confidence flavour) leave the
#: database untouched, so re-running one after a dropped connection — even
#: when the first attempt may have completed server-side — changes nothing
#: but the memo cache.  ``execute`` / ``execute_script`` are excluded
#: because SQL may contain ``assert``, which *conditions the database*:
#: a retry after an ambiguous failure could condition twice.  Clients that
#: know a statement is a plain select can still retry it themselves.
IDEMPOTENT_OPS = frozenset(
    {
        "ping",
        "health",
        "stats",
        "metrics",
        "shard_map",
        "confidence",
        "confidence_many",
        "confidence_batch",
        "what_if",
    }
)

#: Exception class -> wire error code, most specific classes first (the first
#: ``isinstance`` match wins, so subclasses must precede their bases).
ERROR_CODES: tuple[tuple[type[ReproError], str], ...] = (
    (DeadlineExceededError, "deadline-exceeded"),
    (OverloadedError, "overloaded"),
    (ShardUnavailableError, "shard-unavailable"),
    (BudgetExceededError, "budget-exceeded"),
    (SQLSyntaxError, "sql-syntax"),
    (UnknownRelationError, "unknown-relation"),
    (UnknownAttributeError, "unknown-attribute"),
    (SchemaError, "schema"),
    (QueryError, "query"),
    (UnknownVariableError, "unknown-variable"),
    (UnknownValueError, "unknown-value"),
    (InvalidDistributionError, "invalid-distribution"),
    (WorldTableError, "world-table"),
    (InconsistentDescriptorError, "inconsistent-descriptor"),
    (DescriptorError, "descriptor"),
    (ZeroProbabilityConditionError, "zero-probability-condition"),
    (ConditioningError, "conditioning"),
    (WorkerPoolError, "worker-pool"),
    (ReproError, "repro"),
)

#: Codes for failures of the protocol itself (no repro exception behind them).
PROTOCOL_ERROR_CODES = (
    "malformed-frame",
    "frame-too-large",
    "unsupported-version",
    "unknown-op",
    "connection-closed",
    "internal",
)


def error_code(exception: BaseException) -> str:
    """The wire error code for an exception (``"internal"`` if unmapped)."""
    if isinstance(exception, ProtocolError):
        return exception.code
    for cls, code in ERROR_CODES:
        if isinstance(exception, cls):
            return code
    return "internal"


def error_detail(exception: BaseException) -> dict:
    """Structured, JSON-safe fields of an exception for the error frame.

    Lets :func:`exception_for` rebuild exceptions whose constructors take
    more than a message (relation/attribute/variable names, budget figures).
    """
    if isinstance(exception, UnknownRelationError):
        return {"name": exception.name}
    if isinstance(exception, UnknownAttributeError):
        return {"attribute": exception.attribute, "schema": list(exception.schema)}
    if isinstance(exception, UnknownValueError):
        return {
            "variable": _jsonable(exception.variable),
            "value": _jsonable(exception.value),
        }
    if isinstance(exception, UnknownVariableError):
        return {"variable": _jsonable(exception.variable)}
    if isinstance(exception, BudgetExceededError):
        detail = {}
        if exception.elapsed is not None:
            detail["elapsed"] = exception.elapsed
        if exception.nodes is not None:
            detail["nodes"] = exception.nodes
        return detail
    if isinstance(exception, DeadlineExceededError):
        if exception.deadline_ms is not None:
            return {"deadline_ms": exception.deadline_ms}
        return {}
    if isinstance(exception, OverloadedError):
        if exception.retry_after_ms is not None:
            return {"retry_after_ms": exception.retry_after_ms}
        return {}
    if isinstance(exception, ShardUnavailableError):
        if exception.shard is not None:
            return {"shard": exception.shard}
        return {}
    return {}


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def exception_for(code: str, message: str, detail: dict | None = None) -> ReproError:
    """The local exception a client should raise for a remote error frame.

    Structured classes are rebuilt from ``detail`` (see :func:`error_detail`);
    unknown codes become :class:`~repro.errors.RemoteError`.
    """
    detail = detail or {}
    if code == "unknown-relation":
        return UnknownRelationError(detail.get("name", message))
    if code == "unknown-attribute":
        return UnknownAttributeError(
            detail.get("attribute", message), tuple(detail.get("schema", ()))
        )
    if code == "unknown-variable":
        return UnknownVariableError(detail.get("variable", message))
    if code == "unknown-value":
        return UnknownValueError(detail.get("variable", message), detail.get("value"))
    if code == "budget-exceeded":
        return BudgetExceededError(
            message, elapsed=detail.get("elapsed"), nodes=detail.get("nodes")
        )
    if code == "deadline-exceeded":
        return DeadlineExceededError(message, deadline_ms=detail.get("deadline_ms"))
    if code == "overloaded":
        return OverloadedError(message, retry_after_ms=detail.get("retry_after_ms"))
    if code == "shard-unavailable":
        return ShardUnavailableError(message, shard=detail.get("shard"))
    plain: dict[str, type[ReproError]] = {
        "sql-syntax": SQLSyntaxError,
        "schema": SchemaError,
        "query": QueryError,
        "invalid-distribution": InvalidDistributionError,
        "world-table": WorldTableError,
        "inconsistent-descriptor": InconsistentDescriptorError,
        "descriptor": DescriptorError,
        "zero-probability-condition": ZeroProbabilityConditionError,
        "conditioning": ConditioningError,
        "worker-pool": WorkerPoolError,
        "repro": ReproError,
    }
    cls = plain.get(code)
    if cls is not None:
        return cls(message)
    if code in PROTOCOL_ERROR_CODES:
        return ProtocolError(message, code=code)
    return RemoteError(code, message)


# ----------------------------------------------------------------------
# Frame construction
# ----------------------------------------------------------------------
def request_frame(
    op: str,
    args: dict | None = None,
    *,
    id: int,
    deadline_ms: float | None = None,
) -> dict:
    """A request frame for ``op`` (client side).

    ``deadline_ms`` (protocol version 3) asks the server to answer within
    that many milliseconds of receiving the frame — covering queueing time,
    not just computation — or fail fast with ``deadline-exceeded``.
    """
    frame: dict = {"v": PROTOCOL_VERSION, "id": id, "op": op, "args": args or {}}
    if deadline_ms is not None:
        frame["deadline_ms"] = deadline_ms
    return frame


def ok_frame(id: object, result: object, *, version: int = PROTOCOL_VERSION) -> dict:
    """A success response echoing the request ``id`` (and its ``version``)."""
    return {"v": version, "id": id, "ok": True, "result": result}


def error_frame(
    id: object,
    code: str,
    message: str,
    detail: dict | None = None,
    *,
    version: int = PROTOCOL_VERSION,
) -> dict:
    """An error response; ``id`` is ``None`` when the request had none."""
    error: dict = {"code": code, "message": message}
    if detail:
        error["detail"] = detail
    return {"v": version, "id": id, "ok": False, "error": error}


def encode_frame(
    payload: dict, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Serialise one frame: length prefix plus compact JSON body."""
    body = json.dumps(payload, separators=(",", ":"), allow_nan=True).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise _too_large_error(len(body), max_frame_bytes)
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse a frame body; raises :class:`ProtocolError` unless it is a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


# ----------------------------------------------------------------------
# QueryResult codec (SQL answers on the wire)
# ----------------------------------------------------------------------
def query_result_to_payload(result: "QueryResult") -> dict:
    """Encode a SQL :class:`~repro.sql.executor.QueryResult`.

    Only the relational surface travels — kind, columns, rows and the
    confidence value; the answer U-relation and ws-set stay server-side
    (clients needing lineage should query ``conf()`` columns explicitly).
    """
    return {
        "kind": result.kind,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "confidence": result.confidence,
    }


def query_result_from_payload(payload: dict) -> "QueryResult":
    """Decode a :func:`query_result_to_payload` object (rows become tuples)."""
    from repro.sql.executor import QueryResult

    return QueryResult(
        kind=payload["kind"],
        columns=tuple(payload.get("columns", ())),
        rows=[tuple(row) for row in payload.get("rows", ())],
        confidence=payload.get("confidence"),
    )


def _too_large_error(length: int, max_frame_bytes: int) -> ProtocolError:
    """The error raised after an oversized frame has been drained."""
    return ProtocolError(
        f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit",
        code="frame-too-large",
    )


def _drain_interrupted_error() -> ProtocolError:
    return ProtocolError(
        "connection closed while draining an oversized frame",
        code="connection-closed",
    )


# ----------------------------------------------------------------------
# asyncio-stream transport
# ----------------------------------------------------------------------
async def write_frame(writer: asyncio.StreamWriter, payload: dict,
                      *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
    """Encode and send one frame, draining the writer.

    Fault point ``frame.send`` (chaos testing only — a no-op unless armed):
    ``drop`` severs the connection before writing, ``truncate`` writes half
    the frame and then severs it, ``delay`` sleeps before writing.
    """
    data = encode_frame(payload, max_frame_bytes=max_frame_bytes)
    if _faults.INJECTOR.armed:
        fault = _faults.take("frame.send")
        if fault is not None:
            if fault.seconds:
                await asyncio.sleep(fault.seconds)
            if fault.kind in ("drop", "truncate"):
                if fault.kind == "truncate":
                    writer.write(fault.truncate(data))
                    with _suppressed_connection_errors():
                        await writer.drain()
                writer.close()
                raise ConnectionResetError(
                    f"fault injection: connection {fault.kind} mid-frame"
                )
    writer.write(data)
    await writer.drain()


@contextlib.contextmanager
def _suppressed_connection_errors():
    try:
        yield
    except (ConnectionError, OSError):
        pass


async def read_frame(reader: asyncio.StreamReader,
                     *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    An oversized frame is *drained* (its announced bytes are read and
    discarded, keeping the stream synchronised) and then reported as a
    ``frame-too-large`` :class:`ProtocolError`, so servers can answer with an
    error frame and keep the connection alive.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-header", code="connection-closed") from error
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(remaining, 1 << 16))
            if not chunk:
                raise _drain_interrupted_error()
            remaining -= len(chunk)
        raise _too_large_error(length, max_frame_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame", code="connection-closed") from error
    return decode_payload(body)


# ----------------------------------------------------------------------
# Blocking-socket transport
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: dict,
               *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
    """Encode and send one frame on a blocking socket.

    Shares the ``frame.send`` fault point of :func:`write_frame` (chaos
    testing only; a no-op unless armed).
    """
    data = encode_frame(payload, max_frame_bytes=max_frame_bytes)
    if _faults.INJECTOR.armed:
        fault = _faults.take("frame.send")
        if fault is not None:
            fault.sleep()
            if fault.kind in ("drop", "truncate"):
                if fault.kind == "truncate":
                    with _suppressed_connection_errors():
                        sock.sendall(fault.truncate(data))
                with _suppressed_connection_errors():
                    sock.close()
                raise ConnectionResetError(
                    f"fault injection: connection {fault.kind} mid-frame"
                )
    sock.sendall(data)


def recv_frame(sock: socket.socket,
               *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF.

    Mirrors :func:`read_frame`: an oversized frame is drained in full before
    the ``frame-too-large`` error is raised, so the stream stays
    synchronised and the connection remains usable.
    """
    header = _recv_exactly(sock, HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        remaining = length
        while remaining > 0:
            chunk = sock.recv(min(remaining, 1 << 16))
            if not chunk:
                raise _drain_interrupted_error()
            remaining -= len(chunk)
        raise _too_large_error(length, max_frame_bytes)
    body = _recv_exactly(sock, length, allow_eof=False)
    return decode_payload(body)


def _recv_exactly(sock: socket.socket, n: int, *, allow_eof: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
