"""The #P-hard ws-set generator (paper, Section 7, "#P-hard cases").

The second data set of the experimental section consists of ws-sets shaped
like the answers of non-hierarchical conjunctive queries without self-joins on
tuple-independent databases — join queries ``Q_s = R_1 ⋈ ... ⋈ R_s`` over
schemas ``R_i(A_i, A_{i+1})`` whose confidence computation is #P-hard.

The generation procedure follows the paper exactly: the ``n`` variables are
partitioned into ``s`` equally-sized sets ``V_1, ..., V_s``; each of the ``w``
ws-descriptors is ``{x_1 → a_1, ..., x_s → a_s}`` where ``x_i`` is drawn
uniformly from ``V_i`` and ``a_i`` is a random alternative of ``x_i``.  All
variables have ``r`` alternatives with uniform probabilities ``1/r`` (the
exact algorithms are insensitive to the probability values as long as the
number of alternatives is constant).

Parameters used in the paper: ``n`` from 50 to 100 000, ``r ∈ {2, 4}``,
``s ∈ {2, 4}``, ``w`` from 5 to 60 000.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.descriptors import WSDescriptor
from repro.core.wsset import WSSet
from repro.db.world_table import WorldTable


@dataclass(frozen=True)
class HardCaseParameters:
    """Parameters of the #P-hard ws-set generator.

    Attributes
    ----------
    num_variables:
        ``n``, the total number of variables (split into ``s`` groups).
    alternatives:
        ``r``, the number of alternatives per variable (uniform ``1/r`` each).
    descriptor_length:
        ``s``, the length of every ws-descriptor — equivalently the number of
        relations joined by the #P-hard query ``Q_s``.
    num_descriptors:
        ``w``, the number of (distinct) ws-descriptors to generate.
    seed:
        Seed of the pseudo-random generator; the instance is fully
        reproducible from its parameters.
    """

    num_variables: int
    alternatives: int = 4
    descriptor_length: int = 4
    num_descriptors: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_variables < self.descriptor_length:
            raise ValueError(
                "need at least as many variables as the descriptor length "
                f"({self.num_variables} < {self.descriptor_length})"
            )
        if self.alternatives < 2:
            raise ValueError("variables need at least two alternatives")
        if self.descriptor_length < 1:
            raise ValueError("descriptors must have at least one assignment")
        if self.num_descriptors < 1:
            raise ValueError("need at least one descriptor")

    def label(self) -> str:
        """A compact label such as ``n=100 r=4 s=4 w=5000`` for reports."""
        return (
            f"n={self.num_variables} r={self.alternatives} "
            f"s={self.descriptor_length} w={self.num_descriptors}"
        )


@dataclass
class HardCaseInstance:
    """A generated hard instance: the world table, the ws-set, and its parameters."""

    parameters: HardCaseParameters
    world_table: WorldTable
    ws_set: WSSet

    @property
    def wsset_size(self) -> int:
        return len(self.ws_set)

    @property
    def variable_count(self) -> int:
        return len(self.world_table)


def generate_hard_instance(parameters: HardCaseParameters) -> HardCaseInstance:
    """Generate a world table and ws-set according to ``parameters``."""
    rng = random.Random(parameters.seed)
    world_table = _uniform_world_table(parameters)
    groups = _variable_groups(parameters)
    ws_set = _sample_wsset(parameters, rng, groups)
    return HardCaseInstance(parameters, world_table, ws_set)


def generate_hard_wsset(parameters: HardCaseParameters) -> tuple[WorldTable, WSSet]:
    """Convenience wrapper returning just ``(world_table, ws_set)``."""
    instance = generate_hard_instance(parameters)
    return instance.world_table, instance.ws_set


def _uniform_world_table(parameters: HardCaseParameters) -> WorldTable:
    world_table = WorldTable()
    weight = 1.0 / parameters.alternatives
    distribution = {value: weight for value in range(parameters.alternatives)}
    for index in range(parameters.num_variables):
        world_table.add_variable(f"x{index}", distribution, normalize=True)
    return world_table


def _variable_groups(parameters: HardCaseParameters) -> list[list[str]]:
    """Partition the variables into ``s`` (nearly) equally-sized groups."""
    names = [f"x{index}" for index in range(parameters.num_variables)]
    group_count = parameters.descriptor_length
    groups: list[list[str]] = [[] for _ in range(group_count)]
    for index, name in enumerate(names):
        groups[index % group_count].append(name)
    return groups


def _sample_wsset(
    parameters: HardCaseParameters,
    rng: random.Random,
    groups: list[list[str]],
) -> WSSet:
    target = parameters.num_descriptors
    descriptors: dict[WSDescriptor, None] = {}
    # Sampling can repeat descriptors; keep drawing until we have the requested
    # number of *distinct* descriptors (with a generous safety cap so that
    # parameter combinations near the space size still terminate).
    max_attempts = 50 * target + 1000
    attempts = 0
    while len(descriptors) < target and attempts < max_attempts:
        attempts += 1
        assignments = {}
        for group in groups:
            variable = rng.choice(group)
            assignments[variable] = rng.randrange(parameters.alternatives)
        descriptors.setdefault(WSDescriptor(assignments), None)
    if len(descriptors) < target:
        raise ValueError(
            f"could not sample {target} distinct descriptors for {parameters.label()}; "
            "the parameter space is too small"
        )
    return WSSet(descriptors)


def sweep_wsset_sizes(
    base: HardCaseParameters,
    sizes: list[int],
) -> list[HardCaseInstance]:
    """Generate one instance per requested ws-set size, sharing all other parameters.

    Used by the Figure 11-13 benchmark sweeps; the seed is offset per size so
    that the instances are independent draws.
    """
    instances = []
    for offset, size in enumerate(sizes):
        parameters = HardCaseParameters(
            num_variables=base.num_variables,
            alternatives=base.alternatives,
            descriptor_length=base.descriptor_length,
            num_descriptors=size,
            seed=base.seed + offset,
        )
        instances.append(generate_hard_instance(parameters))
    return instances
