"""Workload generators for the experiments of Section 7.

* :mod:`repro.workloads.tpch` — a seeded TPC-H-like generator producing the
  ``customer`` / ``orders`` / ``lineitem`` relations and the two Boolean
  queries Q1 and Q2 of Figure 10, over a tuple-independent probabilistic
  database.
* :mod:`repro.workloads.hard` — the #P-hard ws-set generator (parameters
  ``n`` variables, ``r`` alternatives per variable, descriptor length ``s``,
  ``w`` descriptors) used by Figures 11-13.
* :mod:`repro.workloads.random_instances` — small random world tables and
  ws-sets used by unit tests and property-based tests.
"""

from repro.workloads.tpch import TPCHGenerator, TPCHInstance, query_q1, query_q2
from repro.workloads.hard import (
    HardCaseParameters,
    generate_hard_wsset,
    generate_hard_instance,
)
from repro.workloads.random_instances import (
    random_world_table,
    random_wsset,
    random_tuple_independent_database,
)

__all__ = [
    "TPCHGenerator",
    "TPCHInstance",
    "query_q1",
    "query_q2",
    "HardCaseParameters",
    "generate_hard_wsset",
    "generate_hard_instance",
    "random_world_table",
    "random_wsset",
    "random_tuple_independent_database",
]
