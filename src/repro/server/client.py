"""Client library for the confidence server: the session API over a socket.

:class:`ServerSession` (blocking) and :class:`AsyncServerSession` (asyncio)
mirror the local :class:`~repro.db.session.Session` /
:class:`~repro.db.session.AsyncSession` surface — ``confidence``, ``query``,
``confidence_many``, ``confidence_batch``, ``what_if``, ``certain_tuples``,
``possible_tuples``, ``execute``, ``execute_script``, ``statistics`` — so
code written against a local session runs unchanged against a socket::

    with connect("127.0.0.1", 2008) as session:
        result = session.confidence("R", method="hybrid", seed=7)
        rows = session.confidence_batch("R")
        answer = session.execute("select SSN, conf() from R")

Results come back as the same dataclasses the local API returns
(:class:`~repro.db.session.ConfidenceResult`,
:class:`~repro.db.confidence.ConfidenceRow`,
:class:`~repro.sql.executor.QueryResult`), and error frames re-raise the
matching :mod:`repro.errors` exception locally (a remote budget overrun
raises :class:`~repro.errors.BudgetExceededError` here).

Both clients are strictly request/response per connection; open several
connections for overlapping requests (that is exactly what the server's
session pool is for) — or batch them: ``confidence_many`` ships all its
targets in one frame and the *server* fans them out across its pool, which
both removes the per-request round trip and, with a process-executor server,
runs the batch across cores.

The blocking client is fault-tolerant (protocol v3):

* a :class:`RetryPolicy` retries failed *idempotent* operations with
  exponential backoff and jitter, reconnecting transparently when the
  connection dropped.  Only operations in
  :data:`repro.server.protocol.IDEMPOTENT_OPS` ever retry — ``execute`` /
  ``execute_script`` can condition the database, and resending one after an
  ambiguous failure could apply it twice;
* ``request_timeout`` bounds each response wait, raising
  :class:`~repro.errors.RequestTimeoutError` instead of hanging forever on a
  wedged server (the connection is closed — the stream is desynchronised —
  and reopened on the next call);
* ``deadline_ms`` (a :class:`~repro.db.session.ConfidenceRequest` option) is
  lifted onto the wire frame, where the server bounds queueing and degrades
  an overrunning exact computation to a Karp-Luby answer;
* :meth:`ServerSession.health` reads the server's admission pressure without
  touching the database or its locks.

:class:`AsyncServerSession` supports ``request_timeout``, deadlines and
``health`` but deliberately not automatic retry: an asyncio caller composes
its own retry loops (and cancellation) more naturally than a built-in policy
could.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.engine import EngineStats
from repro.db.confidence import ConfidenceRow
from repro.db.api import target_to_payload
from repro.db.session import ConfidenceRequest, ConfidenceResult
from repro.errors import (
    OverloadedError,
    ProtocolError,
    RequestTimeoutError,
    WorkerPoolError,
)
from repro.server import protocol
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_PORT,
    IDEMPOTENT_OPS,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.wsset import WSSet
    from repro.db.urelation import URelation
    from repro.sql.executor import QueryResult


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for retrying failed idempotent operations.

    The delay before retry *n* (1-based) is ``base_delay × multiplier^(n-1)``
    capped at ``max_delay``, then raised to any server-provided
    ``retry_after_ms`` hint (an overloaded server knows its own backlog
    better than a generic schedule), then multiplied by ``1 + jitter × U``
    with ``U`` uniform in ``[0, 1)`` — jitter decorrelates a thundering herd
    of clients all shed at the same moment.  ``seed`` makes the jitter
    deterministic (tests); by default each session draws from its own RNG.

    ``attempts`` counts total tries including the first, so ``attempts=1``
    disables retrying while keeping the policy object.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be at least 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay_for(
        self,
        retry_number: int,
        *,
        retry_after_ms: int | None = None,
        rng: "random.Random | None" = None,
    ) -> float:
        """Seconds to sleep before retry ``retry_number`` (1-based)."""
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry_number - 1)
        )
        if retry_after_ms is not None:
            delay = min(self.max_delay, max(delay, retry_after_ms / 1000.0))
        if self.jitter:
            delay *= 1.0 + self.jitter * (rng or random).random()
        return delay


def _failure_mode(error: BaseException) -> tuple[bool, bool]:
    """Classify a call failure as ``(retryable, connection_is_gone)``.

    Retryable failures are those where the server provably did not — or can
    harmlessly again — apply the request: shed before admission
    (``overloaded``), a worker pool that died mid-computation (pure tasks),
    a dropped/desynchronised connection, a client-side response timeout.
    A ``deadline-exceeded`` error is *not* retryable — the same request with
    the same deadline fails the same way — and neither is any typed
    computation error (they would fail identically on a healthy server).
    """
    if isinstance(error, (OverloadedError, WorkerPoolError)):
        return True, False  # clean error frame: the stream is still in sync
    if isinstance(error, RequestTimeoutError):
        return True, True  # the abandoned response desynchronised the stream
    if isinstance(error, ProtocolError):
        return error.code == "connection-closed", True
    if isinstance(error, (ConnectionError, OSError)):
        return True, True
    return False, False


def connect(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    timeout: float | None = None,
    request_timeout: float | None = None,
    retry: RetryPolicy | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> "ServerSession":
    """Open a blocking :class:`ServerSession` to a running confidence server.

    ``timeout`` bounds connection *establishment* (and re-establishment when
    retrying); ``request_timeout`` bounds each response wait — without it the
    socket blocks indefinitely, which is deliberate: exact confidence
    computations can run far longer than any generic default, and a
    mid-request timeout abandons the response, so the connection must be
    reopened.  ``retry`` enables automatic retry of idempotent operations
    (see :class:`RetryPolicy`).
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return ServerSession(
        sock,
        max_frame_bytes=max_frame_bytes,
        address=(host, port),
        connect_timeout=timeout,
        request_timeout=request_timeout,
        retry=retry,
    )


async def connect_async(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    request_timeout: float | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> "AsyncServerSession":
    """Open an :class:`AsyncServerSession` to a running confidence server."""
    reader, writer = await asyncio.open_connection(host, port)
    return AsyncServerSession(
        reader, writer,
        max_frame_bytes=max_frame_bytes,
        request_timeout=request_timeout,
    )


class _SessionCalls:
    """The shared request-building/decoding logic of both client flavours."""

    def _next_id(self) -> int:
        self._id += 1
        return self._id

    @staticmethod
    def _result_of(frame: dict, sent_id: int) -> object:
        if not isinstance(frame, dict) or "ok" not in frame:
            raise ProtocolError(f"malformed response frame {frame!r}")
        if not frame["ok"]:
            # Error frames may carry id null (the server could not read the
            # request's id, e.g. an oversized frame it had to drain); always
            # surface the server's code and message rather than an id
            # mismatch that would hide them.
            error = frame.get("error") or {}
            raise protocol.exception_for(
                error.get("code", "internal"),
                error.get("message", "unknown server error"),
                error.get("detail"),
            )
        if frame.get("id") != sent_id:
            raise ProtocolError(
                f"response id {frame.get('id')!r} does not match request id {sent_id}"
            )
        return frame.get("result")

    @staticmethod
    def _confidence_args(
        target: "WSSet | URelation | str", method: str, options: dict
    ) -> dict:
        return ConfidenceRequest(target, method, **options).to_payload()

    @staticmethod
    def _many_args(targets, method: str, options: dict) -> dict:
        """The ``confidence_many`` frame: one request payload per target."""
        payloads = []
        for target in targets:
            if isinstance(target, ConfidenceRequest):
                payloads.append(target.to_payload())
            else:
                payloads.append(
                    ConfidenceRequest(target, method, **options).to_payload()
                )
        return {"requests": payloads}

    @staticmethod
    def _many_results(result: dict) -> list[ConfidenceResult]:
        return [
            ConfidenceResult.from_payload(payload) for payload in result["results"]
        ]

    @staticmethod
    def _batch_args(relation: "URelation | str", method: str, options: dict) -> dict:
        name = relation if isinstance(relation, str) else relation.name
        return {"relation": name, "method": method, **options}

    @staticmethod
    def _what_if_args(
        target: "WSSet | URelation | str", variable, ps, value
    ) -> dict:
        args = {
            "target": target_to_payload(target),
            "variable": variable,
            "ps": [float(p) for p in ps],
        }
        if value is not None:
            args["value"] = value
        return args

    @staticmethod
    def _batch_rows(result: dict) -> list[ConfidenceRow]:
        return [
            ConfidenceRow(tuple(row["values"]), row["confidence"])
            for row in result["rows"]
        ]


class ServerSession(_SessionCalls):
    """A blocking client connection mirroring the local ``Session`` API."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        address: tuple[str, int] | None = None,
        connect_timeout: float | None = None,
        request_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._sock: socket.socket | None = sock
        self._max_frame_bytes = max_frame_bytes
        self._address = address
        self._connect_timeout = connect_timeout
        self._request_timeout = request_timeout
        self._retry = retry
        self._rng = random.Random(retry.seed) if retry is not None else None
        self._id = 0
        #: Retries performed over this session's lifetime (observability).
        self.retries = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _call(
        self, op: str, args: dict | None = None, deadline_ms: float | None = None
    ) -> object:
        """One request/response round trip, retried per the session policy.

        Only idempotent operations retry (:data:`IDEMPOTENT_OPS`); a failure
        classified as connection-breaking closes the socket, and the next
        attempt reconnects to the remembered address.  Non-retryable errors
        — and retryable ones once the policy's attempts are spent — raise
        to the caller unchanged.
        """
        policy = self._retry if op in IDEMPOTENT_OPS else None
        attempts = policy.attempts if policy is not None else 1
        failures = 0
        while True:
            try:
                return self._call_once(op, args, deadline_ms)
            except Exception as error:  # noqa: BLE001 - reclassified below
                retryable, broken = _failure_mode(error)
                if broken:
                    self.close()
                failures += 1
                if not retryable or failures >= attempts:
                    raise
                self.retries += 1
                time.sleep(
                    policy.delay_for(
                        failures,
                        retry_after_ms=getattr(error, "retry_after_ms", None),
                        rng=self._rng,
                    )
                )

    def _call_once(
        self, op: str, args: dict | None, deadline_ms: float | None
    ) -> object:
        sent_id = self._next_id()
        sock = self._ensure_sock()
        protocol.send_frame(
            sock,
            protocol.request_frame(op, args, id=sent_id, deadline_ms=deadline_ms),
            max_frame_bytes=self._max_frame_bytes,
        )
        if self._request_timeout is not None:
            sock.settimeout(self._request_timeout)
        try:
            frame = protocol.recv_frame(sock, max_frame_bytes=self._max_frame_bytes)
        except TimeoutError:
            # The response may still arrive later; this stream can no longer
            # tell it apart from the next response, so the connection dies.
            self.close()
            raise RequestTimeoutError(
                f"no response to {op!r} within {self._request_timeout:g}s",
                timeout=self._request_timeout,
            ) from None
        finally:
            if self._sock is not None:
                self._sock.settimeout(None)
        if frame is None:
            raise ProtocolError("server closed the connection", code="connection-closed")
        return self._result_of(frame, sent_id)

    def _ensure_sock(self) -> socket.socket:
        """The live socket, reconnecting to the remembered address if closed."""
        if self._sock is None:
            if self._address is None:
                raise ProtocolError(
                    "connection is closed and this session has no address "
                    "to reconnect to (open it via connect())",
                    code="connection-closed",
                )
            sock = socket.create_connection(
                self._address, timeout=self._connect_timeout
            )
            sock.settimeout(None)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        """Close the connection (idempotent; a retrying session may reopen it)."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters twice
                pass

    def __enter__(self) -> "ServerSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The session surface
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        """Liveness check; returns the server's ``{"pong": ..., "protocol": ...}``."""
        return self._call("ping")

    def health(self) -> dict:
        """The server's health payload: status plus admission pressure.

        Unlike :meth:`server_stats` this takes no server-side locks, so it
        answers even while conditioning or a saturated queue stalls
        everything else.  Requires a protocol-version-3 server.
        """
        return self._call("health")

    def shard_map(self) -> dict:
        """The server's cluster membership, lock-free like :meth:`health`.

        ``{"sharded": false}`` on a stand-alone server; on a shard,
        ``{"sharded": true, "shard": i, "shards": n, "map": ...}`` with
        ``map`` a :class:`~repro.cluster.partition.ShardMap` payload.
        Requires a protocol-version-4 server.
        """
        return self._call("shard_map")

    def query(self, request: ConfidenceRequest) -> ConfidenceResult:
        # The request's deadline also rides at frame level, where the server
        # bounds the admission wait with it (not just the computation).
        return ConfidenceResult.from_payload(
            self._call(
                "confidence", request.to_payload(), deadline_ms=request.deadline_ms
            )
        )

    def confidence(
        self, target: "WSSet | URelation | str", method: str = "exact", **options
    ) -> ConfidenceResult:
        return ConfidenceResult.from_payload(
            self._call(
                "confidence",
                self._confidence_args(target, method, options),
                deadline_ms=options.get("deadline_ms"),
            )
        )

    def confidence_many(
        self,
        targets: "list[WSSet | URelation | str | ConfidenceRequest]",
        method: str = "exact",
        **options,
    ) -> list[ConfidenceResult]:
        """All targets in *one* ``confidence_many`` frame (one round trip).

        The server fans the batch out across its session pool (with a
        process executor the requests genuinely overlap across cores) and
        answers in target order.  Requires a protocol-version-2 server:
        this client stamps ``v: 2`` on *every* frame, so against an old
        (v1) server every call — this one included — raises a
        ``ProtocolError`` with code ``unsupported-version``; there is no
        per-operation fallback.
        """
        targets = list(targets)
        if not targets:
            return []
        return self._many_results(
            self._call(
                "confidence_many",
                self._many_args(targets, method, options),
                deadline_ms=options.get("deadline_ms"),
            )
        )

    def confidence_batch(
        self, relation: "URelation | str", method: str = "exact", **options
    ) -> list[ConfidenceRow]:
        return self._batch_rows(
            self._call("confidence_batch", self._batch_args(relation, method, options))
        )

    def certain_tuples(
        self, relation: "URelation | str", *, tolerance: float = 1e-9, **options
    ) -> list[tuple]:
        return [
            row.values
            for row in self.confidence_batch(relation, **options)
            if row.confidence >= 1.0 - tolerance
        ]

    def possible_tuples(
        self, relation: "URelation | str", *, threshold: float = 0.0, **options
    ) -> list[ConfidenceRow]:
        return [
            row
            for row in self.confidence_batch(relation, **options)
            if row.confidence > threshold
        ]

    def what_if(
        self,
        target: "WSSet | URelation | str",
        variable,
        ps,
        *,
        value=None,
        deadline_ms: float | None = None,
    ) -> list[float]:
        """A what-if sweep in one frame: ``P(target)`` at every point of ``ps``.

        The server compiles the target's lineage into a circuit once
        (cached across calls on the shared engine handle) and re-evaluates
        it per point — mirroring :meth:`~repro.db.session.Session.what_if`.
        Requires a protocol-version-3 server.  ``variable`` and ``value``
        must be JSON-representable, like ws-set targets.
        """
        result = self._call(
            "what_if",
            self._what_if_args(target, variable, ps, value),
            deadline_ms=deadline_ms,
        )
        return list(result["values"])

    def execute(self, sql: str) -> "QueryResult":
        return protocol.query_result_from_payload(self._call("execute", {"sql": sql}))

    def execute_script(self, sql: str) -> "list[QueryResult]":
        return [
            protocol.query_result_from_payload(payload)
            for payload in self._call("execute_script", {"sql": sql})
        ]

    def server_stats(self) -> dict:
        """The raw ``stats`` frame: engine snapshot plus server counters."""
        return self._call("stats")

    def metrics(self) -> dict:
        """The server's merged metrics snapshot (registry schema, lock-free).

        Counters, gauges and histogram snapshots keyed by Prometheus-style
        series name; feed histograms to
        :func:`repro.obs.metrics.quantile_from_snapshot` for p50/p90/p99.
        Requires a protocol-version-3 server.
        """
        return self._call("metrics")["metrics"]

    def statistics(self) -> EngineStats:
        """The shared engine's aggregate statistics (like ``Session.statistics``)."""
        return EngineStats.from_dict(self.server_stats()["engine"])

    @property
    def stats(self) -> EngineStats:
        """Alias of :meth:`statistics`."""
        return self.statistics()

    def __repr__(self) -> str:
        try:
            if self._sock is None:
                raise OSError
            peer = "%s:%s" % self._sock.getpeername()[:2]
        except OSError:
            peer = "closed"
        return f"ServerSession({peer})"


class AsyncServerSession(_SessionCalls):
    """An asyncio client connection mirroring the local ``AsyncSession`` API.

    Calls serialise on an internal lock (the protocol is request/response per
    connection); ``confidence_many`` therefore pipelines at the server only
    when issued from several connections, exactly like the blocking client.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        request_timeout: float | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._request_timeout = request_timeout
        self._id = 0
        self._lock = asyncio.Lock()

    async def _call(
        self, op: str, args: dict | None = None, deadline_ms: float | None = None
    ) -> object:
        async with self._lock:
            sent_id = self._next_id()
            await protocol.write_frame(
                self._writer,
                protocol.request_frame(op, args, id=sent_id, deadline_ms=deadline_ms),
                max_frame_bytes=self._max_frame_bytes,
            )
            try:
                if self._request_timeout is None:
                    frame = await protocol.read_frame(
                        self._reader, max_frame_bytes=self._max_frame_bytes
                    )
                else:
                    frame = await asyncio.wait_for(
                        protocol.read_frame(
                            self._reader, max_frame_bytes=self._max_frame_bytes
                        ),
                        self._request_timeout,
                    )
            except TimeoutError:
                # The stream is desynchronised (the abandoned response could
                # arrive any time); close so no later call misreads it.
                await self.close()
                raise RequestTimeoutError(
                    f"no response to {op!r} within {self._request_timeout:g}s",
                    timeout=self._request_timeout,
                ) from None
        if frame is None:
            raise ProtocolError("server closed the connection", code="connection-closed")
        return self._result_of(frame, sent_id)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "AsyncServerSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def ping(self) -> dict:
        return await self._call("ping")

    async def health(self) -> dict:
        """The server's lock-free health payload (see the blocking twin)."""
        return await self._call("health")

    async def shard_map(self) -> dict:
        """The server's cluster membership (see the blocking twin)."""
        return await self._call("shard_map")

    async def query(self, request: ConfidenceRequest) -> ConfidenceResult:
        return ConfidenceResult.from_payload(
            await self._call(
                "confidence", request.to_payload(), deadline_ms=request.deadline_ms
            )
        )

    async def confidence(
        self, target: "WSSet | URelation | str", method: str = "exact", **options
    ) -> ConfidenceResult:
        return ConfidenceResult.from_payload(
            await self._call(
                "confidence",
                self._confidence_args(target, method, options),
                deadline_ms=options.get("deadline_ms"),
            )
        )

    async def confidence_many(
        self,
        targets: "list[WSSet | URelation | str | ConfidenceRequest]",
        method: str = "exact",
        **options,
    ) -> list[ConfidenceResult]:
        """All targets in one ``confidence_many`` frame (see the blocking twin)."""
        targets = list(targets)
        if not targets:
            return []
        return self._many_results(
            await self._call(
                "confidence_many",
                self._many_args(targets, method, options),
                deadline_ms=options.get("deadline_ms"),
            )
        )

    async def confidence_batch(
        self, relation: "URelation | str", method: str = "exact", **options
    ) -> list[ConfidenceRow]:
        return self._batch_rows(
            await self._call(
                "confidence_batch", self._batch_args(relation, method, options)
            )
        )

    async def certain_tuples(
        self, relation: "URelation | str", *, tolerance: float = 1e-9, **options
    ) -> list[tuple]:
        return [
            row.values
            for row in await self.confidence_batch(relation, **options)
            if row.confidence >= 1.0 - tolerance
        ]

    async def possible_tuples(
        self, relation: "URelation | str", *, threshold: float = 0.0, **options
    ) -> list[ConfidenceRow]:
        return [
            row
            for row in await self.confidence_batch(relation, **options)
            if row.confidence > threshold
        ]

    async def what_if(
        self,
        target: "WSSet | URelation | str",
        variable,
        ps,
        *,
        value=None,
        deadline_ms: float | None = None,
    ) -> list[float]:
        """A one-frame what-if sweep (see the blocking twin)."""
        result = await self._call(
            "what_if",
            self._what_if_args(target, variable, ps, value),
            deadline_ms=deadline_ms,
        )
        return list(result["values"])

    async def execute(self, sql: str) -> "QueryResult":
        return protocol.query_result_from_payload(
            await self._call("execute", {"sql": sql})
        )

    async def execute_script(self, sql: str) -> "list[QueryResult]":
        return [
            protocol.query_result_from_payload(payload)
            for payload in await self._call("execute_script", {"sql": sql})
        ]

    async def server_stats(self) -> dict:
        return await self._call("stats")

    async def metrics(self) -> dict:
        """The server's merged metrics snapshot (see the blocking twin)."""
        return (await self._call("metrics"))["metrics"]

    async def statistics(self) -> EngineStats:
        return EngineStats.from_dict((await self.server_stats())["engine"])

    def __repr__(self) -> str:
        return "AsyncServerSession()"
