"""Fixtures for the cluster tests: a multi-component database and clusters.

The workload is ``hardmix`` — several independent Figure 11a hard instances
with per-group variable prefixes merged into one relation — because a
cluster can only spread a database that *has* several descriptor-variable
components; a single hard instance is usually one connected component and
lands wholly on one shard.
"""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster
from repro.cluster.__main__ import build_cluster_database
from repro.db.session import Session
from repro.testing import faults

HARDMIX_SPEC = "hardmix:groups=6,n=8,r=2,s=4,w=6,seed=1"


@pytest.fixture(autouse=True)
def disarm_faults():
    """No fault armed by a chaos test may leak into its neighbours."""
    faults.disarm_all()
    yield
    faults.disarm_all()


@pytest.fixture(scope="session")
def hardmix_db():
    """A six-component hard database (relation ``HARD``, 36 rows)."""
    return build_cluster_database(HARDMIX_SPEC)


@pytest.fixture(scope="session")
def single(hardmix_db):
    """The single-node reference session every cluster answer must match."""
    return Session(hardmix_db)


@pytest.fixture
def cluster(hardmix_db):
    """A running three-shard cluster over the hardmix database."""
    with LocalCluster(hardmix_db, shards=3) as running:
        yield running
