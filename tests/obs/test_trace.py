"""Unit tests for the span/tracer substrate."""

from __future__ import annotations

import threading
import time

from repro.obs import trace
from repro.obs.trace import Span, Tracer, activate, current_tracer, deactivate, span


class TestDisabled:
    def test_span_without_tracer_is_shared_noop(self):
        assert current_tracer() is None
        first = span("anything", attr=1)
        second = span("else")
        assert first is second  # the shared singleton: no allocation
        assert not first.enabled
        with first as sp:
            sp.set(ignored=True)  # all operations are cheap no-ops

    def test_activation_is_thread_local(self):
        tracer = Tracer("request")
        previous = activate(tracer)
        try:
            seen_in_thread = []

            def other_thread():
                seen_in_thread.append(current_tracer())

            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
            assert seen_in_thread == [None]
            assert current_tracer() is tracer
        finally:
            deactivate(previous)
        assert current_tracer() is None


class TestTracer:
    def run_traced(self):
        tracer = Tracer("request", method="exact")
        previous = activate(tracer)
        try:
            with span("decompose", descriptors=8) as sp:
                sp.set(components=2)
                time.sleep(0.002)
            with span("dispatch"):
                with span("component"):
                    time.sleep(0.002)
        finally:
            deactivate(previous)
        return tracer

    def test_span_tree_shape_and_attrs(self):
        payload = self.run_traced().finish()
        assert payload["name"] == "request"
        assert payload["attrs"] == {"method": "exact"}
        children = payload["children"]
        assert [child["name"] for child in children] == ["decompose", "dispatch"]
        assert children[0]["attrs"] == {"descriptors": 8, "components": 2}
        assert children[1]["children"][0]["name"] == "component"

    def test_self_seconds_sum_to_root_seconds(self):
        payload = self.run_traced().finish()

        def self_sum(node):
            return node["self_seconds"] + sum(
                self_sum(child) for child in node.get("children", ())
            )

        assert abs(self_sum(payload) - payload["seconds"]) < 1e-9

    def test_finish_override_pins_root_to_wall_time(self):
        tracer = self.run_traced()
        payload = tracer.finish(1.5)
        assert payload["seconds"] == 1.5

    def test_attach_remote(self):
        tracer = Tracer("request")
        previous = activate(tracer)
        try:
            with span("dispatch"):
                tracer.attach_remote([
                    {"name": "worker_component", "seconds": 0.25,
                     "attrs": {"pid": 123}},
                ])
        finally:
            deactivate(previous)
        payload = tracer.finish(0.3)
        dispatch = payload["children"][0]
        worker = dispatch["children"][0]
        assert worker["name"] == "worker_component"
        assert worker["remote"] is True
        assert worker["seconds"] == 0.25
        # The remote child's time counts against the dispatch span's self time.
        assert dispatch["self_seconds"] == max(0.0, dispatch["seconds"] - 0.25)

    def test_pop_tolerates_leaked_spans(self):
        tracer = Tracer("request")
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__()  # exits out of order; must not corrupt the stack
        assert tracer.current() is tracer.root
        with tracer.span("after") as sp:
            assert sp.name == "after"
        assert [child.name for child in tracer.root.children] == ["outer", "after"]

    def test_payload_round_trip(self):
        payload = self.run_traced().finish()
        rebuilt = Span.from_payload(payload)
        assert rebuilt.to_payload() == payload

    def test_iter_spans_walks_depth_first(self):
        payload = self.run_traced().finish()
        names = [node["name"] for node in trace.iter_spans(payload)]
        assert names == ["request", "decompose", "dispatch", "component"]
