"""Testing support: the fault-injection harness behind the chaos suite.

Nothing here runs in ordinary operation — the fault points compiled into the
serving stack are no-ops until a fault is armed (see
:mod:`repro.testing.faults`).
"""

from repro.testing.faults import (
    Fault,
    FaultInjector,
    INJECTOR,
    arm,
    disarm_all,
    kill_pool_worker,
    take,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "INJECTOR",
    "arm",
    "disarm_all",
    "kill_pool_worker",
    "take",
]
