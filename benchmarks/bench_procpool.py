"""Process-pool executor: multi-core exact confidence vs the serial engine.

Three measurements, all on Figure 11a (#P-hard) material:

1. **Component fan-out** (engine level): one query whose ws-set is the union
   of K variable-disjoint Figure 11a instances — a K-way top-level ⊗-node.
   ``ExactConfig(executor="process")`` ships the components to the worker
   processes; the serial engine walks them one by one.  Results must be
   bit-identical.

2. **Server cold queries** (system level): a real ``python -m repro.server``
   subprocess serving a Figure 11a instance; one ``confidence_many`` frame
   carrying a pool of non-overlapping slice queries (distinct lineage — no
   memo reuse between them).  ``--executor process --workers N`` fans the
   batch across cores; ``--executor serial`` computes it one query at a
   time.  Values must agree with a local session to the bit.

3. **Round-trip elimination**: the same batch issued as looped
   ``confidence`` calls vs one ``confidence_many`` frame, repeated on a warm
   memo so protocol overhead dominates — the per-request p99 of the batched
   path must beat the looped path.

Speedup floors are enforced only when the machine actually has the cores:
the *ratio* targets (≥2.5x at 4 workers, ≥1.3x at 2 workers in ``--quick``
mode) assume ≥4 (resp. ≥2) usable CPUs; on smaller machines the numbers are
recorded but not asserted, and the report says so.

Run directly to print the table and record ``BENCH_procpool.json``::

    PYTHONPATH=src python benchmarks/bench_procpool.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.core.engine import EngineHandle
from repro.core.probability import ExactConfig
from repro.core.wsset import WSSet
from repro.db.session import Session
from repro.db.world_table import WorldTable
from repro.server.client import connect
from repro.workloads.hard import HardCaseParameters, generate_hard_instance

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_NAME = "BENCH_procpool.json"

#: Figure 11a parameters of one component / of the served instance.
NUM_VARIABLES = 16
ALTERNATIVES = 2
DESCRIPTOR_LENGTH = 4

#: Full-mode workload sizes (quick mode shrinks these).
FANOUT_COMPONENTS = 8
FANOUT_DESCRIPTORS = 56
SERVER_DESCRIPTORS = 288
SERVER_QUERIES = 8
SERVER_SLICE = 36
ROUNDTRIP_REPETITIONS = 60

WORKERS = 4
TARGET_SPEEDUP = 2.5
QUICK_WORKERS = 2
QUICK_TARGET_SPEEDUP = 1.3


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# 1. Component fan-out (engine level)
# ----------------------------------------------------------------------
def build_fanout_instance(components: int, descriptors: int):
    """The union of ``components`` disjoint Figure 11a instances.

    Variables of component ``c`` are prefixed ``g{c}.``, so the ws-set has
    exactly ``components`` top-level ⊗-components of ``descriptors``
    descriptors each.
    """
    world_table = WorldTable()
    union = []
    for component in range(components):
        instance = generate_hard_instance(
            HardCaseParameters(
                num_variables=NUM_VARIABLES,
                alternatives=ALTERNATIVES,
                descriptor_length=DESCRIPTOR_LENGTH,
                num_descriptors=descriptors,
                seed=component,
            )
        )
        rename = {
            variable: f"g{component}.{variable}"
            for variable in instance.world_table.variables
        }
        for variable in instance.world_table.variables:
            world_table.add_variable(
                rename[variable], instance.world_table.distribution(variable)
            )
        for descriptor in instance.ws_set:
            union.append(
                {rename[variable]: value for variable, value in descriptor.items()}
            )
    return world_table, WSSet(union)


def measure_fanout(components: int, descriptors: int, workers: int) -> dict:
    world_table, ws_set = build_fanout_instance(components, descriptors)

    serial_handle = EngineHandle(world_table, ExactConfig())
    started = time.perf_counter()
    serial_value = serial_handle.probability(ws_set)
    serial_seconds = time.perf_counter() - started

    process_handle = EngineHandle(
        world_table, ExactConfig(executor="process"), workers=workers
    )
    try:
        process_handle.warm_up()  # spawn cost must not pollute the timing
        started = time.perf_counter()
        process_value = process_handle.probability(ws_set)
        process_seconds = time.perf_counter() - started
    finally:
        process_handle.close()

    assert process_value == serial_value, (
        f"process executor diverged: {process_value} != {serial_value}"
    )
    return {
        "components": components,
        "descriptors_per_component": descriptors,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "process_seconds": round(process_seconds, 4),
        "speedup": round(serial_seconds / process_seconds, 2),
        "bit_identical": True,
        "value": serial_value,
    }


# ----------------------------------------------------------------------
# 2 + 3. Server scenarios
# ----------------------------------------------------------------------
def start_server(num_descriptors: int, executor: str, workers: int, pool: int):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
    )
    spec = (
        f"figure11a:n={NUM_VARIABLES},r={ALTERNATIVES},"
        f"s={DESCRIPTOR_LENGTH},w={num_descriptors},seed=0"
    )
    command = [
        sys.executable, "-m", "repro.server",
        "--port", "0", "--pool", str(pool), "--workload", spec,
        "--executor", executor,
    ]
    if executor == "process":
        command += ["--workers", str(workers)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    banner = process.stdout.readline().strip()
    match = re.fullmatch(r"listening on (.+):(\d+)", banner)
    if not match:
        process.kill()
        raise RuntimeError(
            f"server failed to start: {banner!r} / {process.stderr.read()}"
        )
    return process, match.group(1), int(match.group(2))


def stop_server(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.communicate(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        process.kill()
        process.communicate()


def build_server_queries(num_descriptors: int, queries: int, size: int):
    """Non-overlapping slices: distinct lineage, so no cross-query memo reuse."""
    instance = generate_hard_instance(
        HardCaseParameters(
            num_variables=NUM_VARIABLES,
            alternatives=ALTERNATIVES,
            descriptor_length=DESCRIPTOR_LENGTH,
            num_descriptors=num_descriptors,
            seed=0,
        )
    )
    descriptors = list(instance.ws_set)
    pool = [WSSet(descriptors[index * size : (index + 1) * size]) for index in range(queries)]
    return instance, pool


def measure_server_cold_batch(
    executor: str, workers: int, num_descriptors: int, pool: list, expected: list
) -> dict:
    """One cold ``confidence_many`` batch against a fresh server."""
    process, host, port = start_server(
        num_descriptors, executor, workers, pool=max(8, len(pool))
    )
    try:
        with connect(host, port) as session:
            session.ping()  # connection warm-up outside the timed region
            started = time.perf_counter()
            results = session.confidence_many(pool)
            wall = time.perf_counter() - started
    finally:
        stop_server(process)
    values = [result.value for result in results]
    for index, (value, reference) in enumerate(zip(values, expected)):
        assert value == reference, (
            f"{executor} query {index}: {value} != {reference}"
        )
    return {
        "executor": executor,
        "workers": workers if executor == "process" else 0,
        "queries": len(pool),
        "wall_seconds": round(wall, 4),
        "bit_identical": True,
    }


def measure_roundtrips(
    num_descriptors: int, pool: list, repetitions: int, workers: int
) -> dict:
    """Looped ``confidence`` vs one ``confidence_many`` on a warm memo."""
    process, host, port = start_server(
        num_descriptors, "process", workers, pool=max(8, len(pool))
    )
    try:
        with connect(host, port) as session:
            for query in pool:  # warm the shared memo once
                session.confidence(query)
            session.confidence_many(pool)  # ... and the batched path itself
            looped: list[float] = []
            batched: list[float] = []
            for _ in range(repetitions):
                for query in pool:
                    started = time.perf_counter()
                    session.confidence(query)
                    looped.append(time.perf_counter() - started)
                started = time.perf_counter()
                session.confidence_many(pool)
                batched.append((time.perf_counter() - started) / len(pool))
    finally:
        stop_server(process)
    looped_sorted = sorted(looped)
    batched_sorted = sorted(batched)
    return {
        "repetitions": repetitions,
        "queries_per_batch": len(pool),
        "looped_per_request_ms": _latency_summary(looped),
        "confidence_many_per_request_ms": _latency_summary(batched),
        "p50_improvement": round(
            _percentile(looped_sorted, 0.50) / _percentile(batched_sorted, 0.50), 2
        ),
        "p99_improvement": round(
            _percentile(looped_sorted, 0.99) / _percentile(batched_sorted, 0.99), 2
        ),
    }


def _latency_summary(per_request_seconds: list[float]) -> dict:
    ordered = sorted(per_request_seconds)
    return {
        "mean": round(1000 * statistics.fmean(ordered), 4),
        "p50": round(1000 * _percentile(ordered, 0.50), 4),
        "p99": round(1000 * _percentile(ordered, 0.99), 4),
        "max": round(1000 * ordered[-1], 4),
    }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def main(argv: list[str] | None = None) -> Path:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workload, 2 workers, 1.3x floor (CI smoke)",
    )
    parser.add_argument("--out", type=Path, default=REPO_ROOT / REPORT_NAME)
    arguments = parser.parse_args(argv)

    quick = arguments.quick
    workers = QUICK_WORKERS if quick else WORKERS
    target = QUICK_TARGET_SPEEDUP if quick else TARGET_SPEEDUP
    cpus = usable_cpus()
    enforce = cpus >= workers
    if not enforce:
        print(
            f"note: only {cpus} usable CPU(s) for {workers} workers — speedup "
            f"floors are recorded but not enforced on this machine"
        )

    fanout_components = 4 if quick else FANOUT_COMPONENTS
    fanout_descriptors = 40 if quick else FANOUT_DESCRIPTORS
    server_descriptors = 144 if quick else SERVER_DESCRIPTORS
    server_queries = 4 if quick else SERVER_QUERIES
    server_slice = SERVER_SLICE
    repetitions = 10 if quick else ROUNDTRIP_REPETITIONS

    print(
        f"1) component fan-out: {fanout_components} disjoint Figure 11a "
        f"components x {fanout_descriptors} descriptors, {workers} workers"
    )
    fanout = measure_fanout(fanout_components, fanout_descriptors, workers)
    print(
        f"   serial {fanout['serial_seconds']:.2f}s  process "
        f"{fanout['process_seconds']:.2f}s  -> {fanout['speedup']}x (bit-identical)"
    )

    print(
        f"2) server cold batch: {server_queries} x {server_slice}-descriptor "
        f"slice queries over w={server_descriptors}"
    )
    instance, pool = build_server_queries(
        server_descriptors, server_queries, server_slice
    )
    reference = Session(instance.world_table)
    expected = [reference.confidence(query).value for query in pool]
    serial_scenario = measure_server_cold_batch(
        "serial", workers, server_descriptors, pool, expected
    )
    process_scenario = measure_server_cold_batch(
        "process", workers, server_descriptors, pool, expected
    )
    server_speedup = round(
        serial_scenario["wall_seconds"] / process_scenario["wall_seconds"], 2
    )
    print(
        f"   serial {serial_scenario['wall_seconds']:.2f}s  process "
        f"{process_scenario['wall_seconds']:.2f}s  -> {server_speedup}x "
        f"(values equal to local session)"
    )

    print(f"3) round trips: looped confidence vs confidence_many x {repetitions}")
    roundtrips = measure_roundtrips(server_descriptors, pool, repetitions, workers)
    print(
        f"   per-request p99: looped "
        f"{roundtrips['looped_per_request_ms']['p99']:.2f}ms  batched "
        f"{roundtrips['confidence_many_per_request_ms']['p99']:.2f}ms  "
        f"-> {roundtrips['p99_improvement']}x"
    )

    best_speedup = max(fanout["speedup"], server_speedup)
    if enforce:
        assert best_speedup >= target, (
            f"process-executor target missed: {best_speedup}x < {target}x "
            f"at {workers} workers on {cpus} CPUs"
        )
        print(f"speedup floor ok: {best_speedup}x >= {target}x")
    # The median is the stable floor on noisy shared runners; the p99
    # improvement is recorded alongside (the batch removes a per-request
    # round trip, which is precisely what cuts the tail).
    assert roundtrips["p50_improvement"] > 1.0, (
        "confidence_many did not beat looped confidence at the median: "
        f"{roundtrips['p50_improvement']}x"
    )

    payload = {
        "title": "Process-pool executor vs serial on Figure 11a workloads",
        "quick": quick,
        "machine": {"usable_cpus": cpus, "workers": workers},
        "target": {
            "speedup": target,
            "enforced": enforce,
            "note": None
            if enforce
            else (
                f"floor assumes >= {workers} usable CPUs; this machine has "
                f"{cpus}, so the ratio is recorded unenforced"
            ),
        },
        "component_fanout": fanout,
        "server_cold_batch": {
            "workload": {
                "figure": "11a",
                "num_variables": NUM_VARIABLES,
                "alternatives": ALTERNATIVES,
                "descriptor_length": DESCRIPTOR_LENGTH,
                "num_descriptors": server_descriptors,
                "queries": server_queries,
                "slice_size": server_slice,
            },
            "scenarios": [serial_scenario, process_scenario],
            "speedup": server_speedup,
        },
        "confidence_many_roundtrips": roundtrips,
    }
    arguments.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {arguments.out}")
    return arguments.out


if __name__ == "__main__":
    main()
