"""Variable-choice heuristics for the Davis-Putnam-style decomposition (paper, Section 4.2).

When the decomposition of a ws-set has to fall back to variable elimination,
the choice of variable greatly influences the size of the resulting ws-tree
(the classic variable-ordering problem of BDDs).  The paper proposes two
heuristics and benchmarks them against each other in Figure 13:

* **minlog** (Figure 6): choose the variable minimising
  ``log2(Σ_i 2^{s_i})`` where ``s_i = |S_{x→i} ∪ T|`` is the size of the
  sub-problem created for alternative ``i`` (``T`` being the descriptors not
  mentioning ``x``).  The estimate is accumulated in log-space exactly as in
  Figure 6 to avoid huge intermediate numbers.
* **minmax**: choose the variable minimising ``max_i |S_{x→i} ∪ T|`` — cheaper
  to evaluate but blind to the number of large branches (Remark 4.6 gives a
  scenario where it is suboptimal).

For ablation experiments three extra strategies are provided: the first
variable encountered, the most frequently occurring variable, and a seeded
random choice.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import Value, Variable, WorldTable
else:
    Variable = object
    Value = object

#: Per-variable occurrence statistics gathered in one pass over the ws-set:
#: ``occurrences[x][i]`` is the number of descriptors containing ``x -> i``.
OccurrenceCounts = Mapping[Variable, Mapping[Value, int]]


class Heuristic:
    """Base class: scores candidate variables and picks the minimum-score one."""

    #: Human-readable name used by :func:`make_heuristic` and benchmark reports.
    name = "abstract"

    def estimate(
        self,
        variable: Variable,
        value_counts: Mapping[Value, int],
        t_size: int,
        domain_size: int,
    ) -> float:
        """Score for eliminating ``variable``; lower is better.

        Parameters
        ----------
        variable:
            The candidate variable.
        value_counts:
            ``value -> number of descriptors containing variable -> value``
            (only values that actually occur are present).
        t_size:
            Number of descriptors *not* mentioning the variable (the ``T`` set
            of Figure 4, which is copied into every branch).
        domain_size:
            Size of the variable's domain in the world table.
        """
        raise NotImplementedError

    def select_variable(
        self,
        occurrences: OccurrenceCounts,
        descriptor_count: int,
        world_table: "WorldTable",
    ) -> Variable:
        """Pick the variable with the smallest estimate (ties: first seen).

        ``world_table`` may be any *domain-size provider* — an object with a
        ``domain_size(variable)`` method for the variables keyed in
        ``occurrences``.  The legacy engine passes the
        :class:`~repro.db.world_table.WorldTable` itself (variables are their
        original names); the interned engine passes its
        :class:`~repro.core.interned.InternedSpace` (variables are dense
        integer ids).  Heuristics therefore must not assume anything about the
        variable objects beyond hashability.
        """
        best_variable = None
        best_score = math.inf
        estimate = self.estimate
        domain_size = world_table.domain_size
        for variable, value_counts in occurrences.items():
            t_size = descriptor_count - sum(value_counts.values())
            score = estimate(variable, value_counts, t_size, domain_size(variable))
            if score < best_score:
                best_score = score
                best_variable = variable
        if best_variable is None:  # pragma: no cover - callers never pass empty stats
            raise ValueError("cannot select a variable from an empty ws-set")
        return best_variable

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MinLogHeuristic(Heuristic):
    """The minlog heuristic of Figure 6 (log-space cost estimate, base 2)."""

    name = "minlog"

    def __init__(self, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ValueError("the cost-estimate base must be greater than one")
        self.base = base
        self._inverse_log_base = 1.0 / math.log(base)

    def estimate(
        self,
        variable: Variable,
        value_counts: Mapping[Value, int],
        t_size: int,
        domain_size: int,
    ) -> float:
        base = self.base
        log = math.log
        inverse_log_base = self._inverse_log_base
        counts = value_counts.values()
        missing_assignment = len(value_counts) < domain_size or 0 in counts
        estimate = float(t_size) if missing_assignment else 0.0
        # Branch sizes s_i = |S_{x->i} ∪ T| for the values that occur in S.
        for count in counts:
            if count <= 0:
                continue
            # e := e + log_base(1 + base^(size - e)), i.e. log-sum-exp accumulation.
            exponent = count + t_size - estimate
            if exponent > 60:
                # base**exponent would overflow long before this point matters;
                # log_base(1 + base**exponent) ≈ exponent for large exponents.
                estimate += exponent
            else:
                estimate += log(1.0 + base**exponent) * inverse_log_base
        return estimate


#: Lazily-bound :func:`repro.core.vector.minlog_scores` (set on first use).
_minlog_scores = None


def minlog_select_vectorized(
    occurrences: OccurrenceCounts,
    descriptor_count: int,
    domain_sizes,
) -> Variable:
    """Vectorised counterpart of :class:`MinLogHeuristic` selection (base 2).

    Computes the Figure 6 estimate ``log2(Σ_i 2^{s_i})`` for *every* candidate
    variable in one segmented numpy reduction instead of a python loop per
    variable, which pays off once ws-sets mention many variables per node.
    ``domain_sizes`` is a domain-size provider (``domain_size(variable)``),
    matching :meth:`Heuristic.select_variable`.  Ties resolve to the first
    candidate in iteration order, like the scalar path.  Callers must ensure
    numpy is available (see :mod:`repro.core.vector`).
    """
    # Bound lazily once so `import repro` never pulls numpy in, while the
    # per-node hot path avoids repeated import machinery.
    global _minlog_scores
    if _minlog_scores is None:
        from repro.core.vector import minlog_scores as _scores

        _minlog_scores = _scores
    minlog_scores = _minlog_scores

    variables = []
    sizes: list[int] = []
    offsets: list[int] = []
    domain_size = domain_sizes.domain_size
    for variable, value_counts in occurrences.items():
        counts = value_counts.values()
        t_size = descriptor_count - sum(counts)
        offsets.append(len(sizes))
        variables.append(variable)
        missing_assignment = len(value_counts) < domain_size(variable) or 0 in counts
        if missing_assignment:
            sizes.append(t_size)
        sizes.extend(count + t_size for count in counts if count > 0)
    scores = minlog_scores(sizes, offsets)
    return variables[int(scores.argmin())]


class MinMaxHeuristic(Heuristic):
    """The minmax heuristic: minimise the largest branch ``|S_{x→i} ∪ T|``."""

    name = "minmax"

    def estimate(
        self,
        variable: Variable,
        value_counts: Mapping[Value, int],
        t_size: int,
        domain_size: int,
    ) -> float:
        sizes = [count + t_size for count in value_counts.values() if count > 0]
        missing_assignment = len(value_counts) < domain_size or any(
            count == 0 for count in value_counts.values()
        )
        if missing_assignment:
            sizes.append(t_size)
        return float(max(sizes)) if sizes else 0.0


class FirstVariableHeuristic(Heuristic):
    """Ablation baseline: take the first candidate variable, ignoring statistics."""

    name = "first"

    def estimate(self, variable, value_counts, t_size, domain_size) -> float:
        return 0.0

    def select_variable(self, occurrences, descriptor_count, world_table):
        return next(iter(occurrences))


class MostFrequentHeuristic(Heuristic):
    """Ablation baseline: eliminate the variable occurring in most descriptors.

    This is the classic "max-occurrence" Davis-Putnam branching rule; it tends
    to shrink ``T`` fast but ignores how evenly the occurrences split across
    the variable's alternatives.
    """

    name = "frequency"

    def estimate(self, variable, value_counts, t_size, domain_size) -> float:
        return -float(sum(value_counts.values()))


class RandomHeuristic(Heuristic):
    """Ablation baseline: uniformly random variable choice (seeded, reproducible)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def estimate(self, variable, value_counts, t_size, domain_size) -> float:
        return self._rng.random()


_HEURISTICS = {
    "minlog": MinLogHeuristic,
    "minmax": MinMaxHeuristic,
    "first": FirstVariableHeuristic,
    "frequency": MostFrequentHeuristic,
    "random": RandomHeuristic,
}


def make_heuristic(name: "str | Heuristic", **kwargs) -> Heuristic:
    """Create a heuristic by name (``minlog``, ``minmax``, ``first``, ``frequency``, ``random``).

    Passing an existing :class:`Heuristic` instance returns it unchanged, so
    API entry points can accept either form.
    """
    if isinstance(name, Heuristic):
        return name
    try:
        factory = _HEURISTICS[name]
    except KeyError:
        known = ", ".join(sorted(_HEURISTICS))
        raise ValueError(f"unknown heuristic {name!r}; known heuristics: {known}") from None
    return factory(**kwargs)


def available_heuristics() -> tuple[str, ...]:
    """Names accepted by :func:`make_heuristic`."""
    return tuple(sorted(_HEURISTICS))


def component_dispatch_cost(component, space) -> int:
    """Evaluation-cost estimate of an interned ⊗-component, for dispatch order.

    The decomposition's work grows with how many descriptors the component
    holds and with how many branches each eliminated variable fans out into,
    so the estimate is *descriptor count × summed domain size* over the
    component's distinct variables — a deterministic integer computed from
    packed assignments alone.  ``space`` is anything with ``shift`` and
    ``domain_size(variable_id)`` (an
    :class:`~repro.core.interned.InternedSpace` or a
    :class:`~repro.core.procpool.SpaceSnapshot`).  Used by
    :func:`~repro.core.procpool.chunk_components` to feed largest-first
    chunks to the process pool so stragglers stop serialising it.
    """
    shift = space.shift
    variable_ids = {p >> shift for descriptor in component for p in descriptor}
    domains = sum(space.domain_size(variable_id) for variable_id in variable_ids)
    return len(component) * max(1, domains)


def count_occurrences(descriptors: Sequence[Mapping[Variable, Value]]) -> dict:
    """Gather ``variable -> value -> count`` statistics in one pass over a ws-set.

    The input descriptors are plain mappings (the internal representation used
    by the decomposition engine) or :class:`~repro.core.descriptors.WSDescriptor`
    instances — anything supporting ``.items()``.
    """
    occurrences: dict[Variable, dict[Value, int]] = {}
    for descriptor in descriptors:
        for variable, value in descriptor.items():
            by_value = occurrences.setdefault(variable, {})
            by_value[value] = by_value.get(value, 0) + 1
    return occurrences
