"""Execution of parsed SQL statements against a probabilistic database.

``SELECT`` statements return a :class:`QueryResult`:

* without ``conf()`` the result is the answer U-relation projected to the
  selected columns (rows still carry their ws-descriptors);
* with ``conf()`` the result closes the possible-worlds semantics: rows are
  grouped by the non-aggregate columns and each group carries the exact
  confidence of its ws-set (the paper's ``select SSN, conf(SSN) from R ...``);
* ``select true from ... where ...`` is a Boolean query; its result carries
  the single confidence value and the answer ws-set.

``ASSERT <boolean query>`` conditions the database in place on the worlds in
which the query is true (the ``assert[B]`` operation of Section 5) and returns
the conditioning summary wrapped in a :class:`QueryResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.probability import ExactConfig, probability
from repro.core.wsset import WSSet
from repro.db import algebra
from repro.db.confidence import confidence_by_tuple
from repro.db.urelation import URelation
from repro.errors import QueryError
from repro.sql.ast_nodes import AssertStatement, ParsedStatement, SelectStatement
from repro.sql.parser import parse
from repro.sql.planner import plan_select

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import ConditioningSummary, ProbabilisticDatabase


@dataclass
class QueryResult:
    """Result of executing one SQL statement."""

    kind: str  # "relation" | "confidence" | "boolean" | "assert"
    columns: tuple[str, ...] = ()
    rows: list[tuple] = field(default_factory=list)
    relation: URelation | None = None
    ws_set: WSSet | None = None
    confidence: float | None = None
    summary: "ConditioningSummary | None" = None

    def as_dicts(self) -> list[dict]:
        """Rows as ``column -> value`` dictionaries (confidence included if any)."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def execute(
    database: "ProbabilisticDatabase",
    sql: "str | ParsedStatement",
    config: ExactConfig | None = None,
) -> QueryResult:
    """Parse (if needed) and execute one SQL statement against ``database``."""
    parsed = parse(sql) if isinstance(sql, str) else sql
    statement = parsed.statement
    if isinstance(statement, AssertStatement):
        return _execute_assert(database, statement, config)
    if isinstance(statement, SelectStatement):
        return _execute_select(database, statement, config)
    raise QueryError(f"unsupported statement {statement!r}")


def _execute_select(
    database: "ProbabilisticDatabase",
    statement: SelectStatement,
    config: ExactConfig | None,
) -> QueryResult:
    plan = plan_select(statement, database)
    answer_wsset = plan.relation.descriptors()

    if plan.is_boolean:
        value = probability(answer_wsset, database.world_table, config)
        return QueryResult(
            kind="boolean",
            columns=("conf",),
            rows=[(value,)],
            ws_set=answer_wsset,
            confidence=value,
            relation=plan.relation,
        )

    projected = (
        algebra.project(plan.relation, plan.output_columns)
        if plan.output_columns
        else plan.relation
    )

    if plan.conf_calls:
        confidence_rows = confidence_by_tuple(projected, database.world_table, config)
        columns = plan.column_labels + ("conf",)
        rows = [row.values + (row.confidence,) for row in confidence_rows]
        return QueryResult(
            kind="confidence",
            columns=columns,
            rows=rows,
            relation=projected,
            ws_set=answer_wsset,
        )

    rows = [row.values for row in projected]
    return QueryResult(
        kind="relation",
        columns=plan.column_labels,
        rows=rows,
        relation=projected,
        ws_set=answer_wsset,
    )


def _execute_assert(
    database: "ProbabilisticDatabase",
    statement: AssertStatement,
    config: ExactConfig | None,
) -> QueryResult:
    plan = plan_select(statement.query, database)
    condition = plan.relation.descriptors()
    summary = database.assert_condition(condition, config)
    return QueryResult(
        kind="assert",
        columns=("confidence",),
        rows=[(summary.confidence,)],
        ws_set=condition,
        confidence=summary.confidence,
        summary=summary,
    )
