"""Unit tests for world tables (Section 2)."""

from __future__ import annotations

import random

import pytest

from repro.db.world_table import WorldTable
from repro.errors import (
    InvalidDistributionError,
    UnknownValueError,
    UnknownVariableError,
)


class TestConstruction:
    def test_add_variable_and_lookup(self, figure2_world_table):
        assert figure2_world_table.probability("j", 1) == pytest.approx(0.2)
        assert figure2_world_table.domain("b") == (4, 7)
        assert figure2_world_table.domain_size("j") == 2
        assert len(figure2_world_table) == 2
        assert "j" in figure2_world_table and "zz" not in figure2_world_table

    def test_from_rows(self):
        w = WorldTable([("x", 1, 0.25), ("x", 2, 0.75), ("y", True, 1.0)])
        assert w.probability("x", 2) == pytest.approx(0.75)
        assert w.is_singleton("y")

    def test_rows_round_trip(self, figure3_world_table):
        rebuilt = WorldTable(figure3_world_table.rows())
        assert rebuilt == figure3_world_table

    def test_add_boolean(self):
        w = WorldTable()
        w.add_boolean("t", 0.3)
        assert w.probability("t", True) == pytest.approx(0.3)
        assert w.probability("t", False) == pytest.approx(0.7)

    def test_normalize(self):
        w = WorldTable()
        w.add_variable("x", {1: 2.0, 2: 6.0}, normalize=True)
        assert w.probability("x", 1) == pytest.approx(0.25)

    def test_invalid_distributions_rejected(self):
        w = WorldTable()
        with pytest.raises(InvalidDistributionError):
            w.add_variable("x", {1: 0.5, 2: 0.6})
        with pytest.raises(InvalidDistributionError):
            w.add_variable("y", {})
        with pytest.raises(InvalidDistributionError):
            w.add_variable("z", {1: -0.1, 2: 1.1})
        with pytest.raises(InvalidDistributionError):
            w.add_boolean("b", 1.5)

    def test_duplicate_variable_rejected(self, figure2_world_table):
        with pytest.raises(InvalidDistributionError):
            figure2_world_table.add_variable("j", {1: 1.0})

    def test_duplicate_alternative_rejected(self):
        w = WorldTable()
        w.add_alternative("x", 1, 0.5)
        with pytest.raises(InvalidDistributionError):
            w.add_alternative("x", 1, 0.5)

    def test_validate_detects_bad_sum(self):
        w = WorldTable()
        w.add_alternative("x", 1, 0.5)
        with pytest.raises(InvalidDistributionError):
            w.validate()

    def test_unknown_variable_and_value(self, figure2_world_table):
        with pytest.raises(UnknownVariableError):
            figure2_world_table.domain("nope")
        with pytest.raises(UnknownValueError):
            figure2_world_table.probability("j", 99)
        with pytest.raises(UnknownVariableError):
            figure2_world_table.remove_variable("nope")


class TestWorlds:
    def test_world_count(self, figure2_world_table, figure3_world_table):
        assert figure2_world_table.world_count() == 4
        assert figure3_world_table.world_count() == 3 * 2 * 2 * 2 * 2

    def test_iter_worlds_probabilities_sum_to_one(self, figure2_world_table):
        total = sum(
            figure2_world_table.world_probability(world)
            for world in figure2_world_table.iter_worlds()
        )
        assert total == pytest.approx(1.0)

    def test_figure1_world_probability(self, figure2_world_table):
        assert figure2_world_table.world_probability({"j": 7, "b": 7}) == pytest.approx(0.56)
        assert figure2_world_table.world_probability({"j": 1, "b": 4}) == pytest.approx(0.06)

    def test_assignment_probability(self, figure3_world_table):
        assert figure3_world_table.assignment_probability(
            [("x", 2), ("y", 1)]
        ) == pytest.approx(0.08)

    def test_sampling_follows_distribution(self, figure2_world_table):
        rng = random.Random(5)
        draws = [figure2_world_table.sample_value(rng, "j") for _ in range(4000)]
        frequency = draws.count(7) / len(draws)
        assert frequency == pytest.approx(0.8, abs=0.03)

    def test_sample_world_assigns_every_variable(self, figure3_world_table):
        world = figure3_world_table.sample_world(random.Random(1))
        assert set(world) == set(figure3_world_table.variables)


class TestCopyingAndCombining:
    def test_copy_is_independent(self, figure2_world_table):
        clone = figure2_world_table.copy()
        clone.add_variable("new", {0: 1.0})
        assert "new" not in figure2_world_table

    def test_restrict(self, figure3_world_table):
        restricted = figure3_world_table.restrict(["x", "y"])
        assert set(restricted.variables) == {"x", "y"}

    def test_merged_with(self, figure2_world_table):
        other = WorldTable()
        other.add_variable("f", {1: 0.5, 4: 0.5})
        merged = figure2_world_table.merged_with(other)
        assert set(merged.variables) == {"j", "b", "f"}

    def test_merged_with_conflicting_distribution_raises(self, figure2_world_table):
        other = WorldTable()
        other.add_variable("j", {1: 0.5, 7: 0.5})
        with pytest.raises(InvalidDistributionError):
            figure2_world_table.merged_with(other)

    def test_alternative_count_and_pretty(self, figure2_world_table):
        assert figure2_world_table.alternative_count() == 4
        rendering = figure2_world_table.pretty()
        assert "Var" in rendering and "0.2" in rendering
