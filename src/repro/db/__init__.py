"""U-relational probabilistic database substrate.

This subpackage provides the representation layer of the paper: world tables
of independent finite-domain random variables (:mod:`repro.db.world_table`),
U-relations whose tuples carry world-set descriptors
(:mod:`repro.db.urelation`), positive relational algebra over them
(:mod:`repro.db.algebra`), the database facade with confidence computation and
conditioning (:mod:`repro.db.database`), and the constraint compiler that
turns functional dependencies and friends into conditions
(:mod:`repro.db.constraints`).
"""

from repro.db.world_table import WorldTable
from repro.db.urelation import URelation, UTuple
from repro.db.database import ProbabilisticDatabase, ConditioningSummary
from repro.db.predicates import (
    AttributeComparison,
    And,
    Or,
    Not,
    TruePredicate,
    attr,
    col,
)
from repro.db.constraints import (
    Constraint,
    FunctionalDependency,
    KeyConstraint,
    EqualityGeneratingDependency,
    DenialConstraint,
)
from repro.db.confidence import (
    ConfidenceRow,
    certain_tuples,
    confidence_by_tuple,
    confidence_of_relation,
    possible_tuples,
)
from repro.db.session import (
    AsyncSession,
    ConfidenceRequest,
    ConfidenceResult,
    Session,
)
from repro.db.tuple_independent import tuple_independent_relation

__all__ = [
    "WorldTable",
    "URelation",
    "UTuple",
    "ProbabilisticDatabase",
    "ConditioningSummary",
    "AttributeComparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "attr",
    "col",
    "Constraint",
    "FunctionalDependency",
    "KeyConstraint",
    "EqualityGeneratingDependency",
    "DenialConstraint",
    "ConfidenceRow",
    "confidence_by_tuple",
    "confidence_of_relation",
    "certain_tuples",
    "possible_tuples",
    "Session",
    "AsyncSession",
    "ConfidenceRequest",
    "ConfidenceResult",
    "tuple_independent_relation",
]
