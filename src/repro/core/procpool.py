"""Process-pool execution backend: interned components evaluated off the GIL.

Threads only interleave exact confidence computation — the decomposition core
is pure Python, so ``Session(workers=N)`` thread pools buy pipelining but not
parallel CPU time.  This module is the process-based backend behind
``ExactConfig(executor="process")``: top-level ⊗-components (and, through the
confidence server, whole cold queries) are shipped to a persistent pool of
worker *processes*, each owning a long-lived :class:`InternedEngine`.

Everything that travels is cheap and picklable by construction:

* **task units** are lists of packed descriptor tuples — the interned
  substrate of :mod:`repro.core.interned`, plain ints all the way down;
* the **id space** travels as a :class:`SpaceSnapshot` — the dense
  ``weights`` / ``shift`` / ``mask`` arrays of the parent's
  :class:`~repro.core.interned.InternedSpace`, without the variable/value
  objects (workers never need them: packed evaluation only touches ids).
  The snapshot rides along with every task (O(total alternatives) floats
  per chunk — tasks can land on any worker, so there is no per-worker
  "already sent" bookkeeping); its ``generation`` tag is what lets a
  worker *keep its engine and memo* across tasks instead of rebuilding
  them per chunk;
* **results** are floats, and worker exceptions re-raise in the parent with
  their original :mod:`repro.errors` types.

Workers re-arm a fresh :class:`~repro.core.decompose.Budget` per component
(the same per-worker budget accounting as the thread path) and keep their
memo caches across tasks, so repeated components within a worker stay warm.
The parent-side memo and the interned space never leave the parent process —
:class:`~repro.core.engine.EngineHandle` consults its shared memo before
dispatching and stores worker results back into it.

A worker that dies outside Python (killed, segfault) breaks the executing
pool.  Because every task is *pure* — packed ints in, floats out, the memo
held by the parent — losing a worker loses no state, so the backend discards
the broken pool, rebuilds it, and retries exactly the chunks whose results
were lost, once.  Only when the retry breaks the pool *again* does the
in-flight computation fail with a typed
:class:`~repro.errors.WorkerPoolError`; either way the next computation runs
on a fresh pool.
"""

from __future__ import annotations

import heapq
import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import TYPE_CHECKING

from repro.core.decompose import Budget
from repro.core.heuristics import component_dispatch_cost
from repro.errors import WorkerPoolError
from repro.obs.metrics import MetricsRegistry
from repro.testing import faults as _faults

logger = logging.getLogger("repro.core.procpool")

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Sequence

    from repro.core.interned import InternedEngine, InternedSpace, PackedDescriptor
    from repro.core.probability import ExactConfig

#: Start method of the worker processes.  ``spawn`` gives every worker a
#: fresh interpreter: no inherited locks from the parent's threads (the
#: confidence server forks nothing while its event loop runs) and identical
#: behaviour across platforms, at the cost of a one-off per-worker startup
#: that the persistent pool amortises away.
START_METHOD = "spawn"


class SpaceSnapshot:
    """A picklable stand-in for an :class:`InternedSpace` in worker processes.

    Carries exactly the dense arrays packed evaluation needs — per-variable
    alternative ``weights`` plus the ``shift``/``mask`` packing geometry —
    and none of the variable/value objects, so it pickles in O(total
    alternatives) floats regardless of what the variables are.  Satisfies
    the domain-size-provider protocol of the variable-choice heuristics and
    the weight lookups of :meth:`InternedEngine.run`; it cannot intern new
    descriptors (workers only ever receive already-packed ones).

    ``generation`` tags the parent's space so workers know when a cached
    engine is stale.
    """

    __slots__ = ("generation", "shift", "mask", "weights")

    def __init__(
        self, generation: int, shift: int, mask: int, weights: list[list[float]]
    ) -> None:
        self.generation = generation
        self.shift = shift
        self.mask = mask
        self.weights = weights

    @classmethod
    def of_space(cls, space: "InternedSpace", generation: int) -> "SpaceSnapshot":
        return cls(generation, space.shift, space.mask, space.weights)

    def domain_size(self, variable_id: int) -> int:
        """Number of alternatives of the variable with the given id."""
        return len(self.weights[variable_id])

    def weight(self, packed: int) -> float:
        """``P({variable -> value})`` of a packed assignment."""
        return self.weights[packed >> self.shift][packed & self.mask]

    def __getstate__(self):
        return (self.generation, self.shift, self.mask, self.weights)

    def __setstate__(self, state) -> None:
        self.generation, self.shift, self.mask, self.weights = state

    def __repr__(self) -> str:
        return (
            f"SpaceSnapshot(generation={self.generation}, "
            f"variables={len(self.weights)})"
        )


#: Chunks handed to the pool per worker: smaller chunks let an idle worker
#: pick up remaining work while another grinds through a straggler, at the
#: price of a few more dispatches (each dispatch is one pickled task).
DISPATCH_FACTOR = 4


def chunk_components(
    components: "list[list[PackedDescriptor]]",
    workers: int,
    costs: "Sequence[int] | None" = None,
) -> "list[list[int]]":
    """Cost-ordered largest-first dispatch plan: batches of component *indices*.

    Components are assigned greedily, most expensive first, to the currently
    least-loaded batch (LPT scheduling) — ``costs[i]`` is component ``i``'s
    evaluation-cost estimate (see
    :func:`~repro.core.heuristics.component_dispatch_cost`; descriptor count
    is the fallback when no costs are given).  Up to
    ``workers × DISPATCH_FACTOR`` batches are built so stragglers stop
    serialising the pool, and the returned plan is ordered heaviest batch
    first, so the most expensive work is in flight before the tail.  Every
    batch is non-empty, the batches partition ``range(len(components))``
    exactly, and the plan is a pure function of ``(costs, workers)`` — the
    caller scatters per-index results back into input order, which keeps the
    merged output bit-identical to serial evaluation.
    """
    if not components:
        return []
    if costs is None:
        costs = [len(component) for component in components]
    count = min(len(components), max(1, workers) * DISPATCH_FACTOR)
    if count == 1:
        return [list(range(len(components)))]
    # Stable sort: equal-cost components keep input order, so the plan (and
    # with it worker memo warm-up order) is deterministic.
    order = sorted(range(len(components)), key=lambda i: (-costs[i], i))
    heap = [(0, batch_index) for batch_index in range(count)]
    batches: list[list[int]] = [[] for _ in range(count)]
    loads = [0] * count
    for index in order:
        load, batch_index = heapq.heappop(heap)
        batches[batch_index].append(index)
        load += costs[index]
        loads[batch_index] = load
        heapq.heappush(heap, (load, batch_index))
    plan = [batch for batch in batches if batch]
    plan.sort(key=lambda batch: (-sum(costs[i] for i in batch), batch[0]))
    return plan


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process engine cache: rebuilt whenever a task carries a snapshot of a
#: different generation (the parent's interned space changed).
_worker_engine: "InternedEngine | None" = None
_worker_generation: int | None = None


def _compute_chunk(
    snapshot: SpaceSnapshot,
    config: "ExactConfig",
    components: "list[list[PackedDescriptor]]",
    max_calls: int | None,
    time_limit: float | None,
    fault: "_faults.Fault | None" = None,
    trace: bool = False,
) -> tuple[list[tuple[float, float]], dict]:
    """Worker task: evaluate components in order, one fresh budget each.

    Returns ``(entries, meta)``: one ``(value, seconds)`` entry per
    component so the parent can account worker busy time, plus a telemetry
    ``meta`` dict — a mergeable metrics snapshot of the per-component
    latency histogram recorded *in this process*
    (``repro_worker_component_seconds``), and, when ``trace`` is set,
    one finished remote span payload per component for the parent's tracer
    to adopt.  The per-worker engine persists across tasks of the same
    generation, so its memo cache warms up across the many components of
    one computation and across computations.  Each component re-arms a
    fresh budget — per-worker budget accounting, matching the thread
    backend.

    ``fault`` is the chaos-testing hook (the ``procpool.worker`` fault
    point): armed in the parent, shipped with the chunk, and executed here
    *inside the worker* — a ``kill`` fault SIGKILLs this process
    mid-computation, breaking the pool exactly the way a crashed worker
    does.  ``None`` in ordinary operation.
    """
    _faults.execute_in_worker(fault)
    global _worker_engine, _worker_generation
    engine = _worker_engine
    if engine is None or _worker_generation != snapshot.generation:
        from repro.core.interned import InternedEngine

        engine = InternedEngine(
            None, config, record_elimination_order=False, space=snapshot
        )
        _worker_engine = engine
        _worker_generation = snapshot.generation
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_worker_component_seconds")
    spans: list[dict] | None = [] if trace else None
    results = []
    for component in components:
        engine.reset_budget(Budget(max_calls, time_limit))
        before = engine.phase_counters() if trace else None
        started = time.perf_counter()
        value = engine.run(component)
        seconds = time.perf_counter() - started
        histogram.record(seconds)
        results.append((value, seconds))
        if spans is not None:
            after = engine.phase_counters()
            spans.append(
                {
                    "name": "worker_component",
                    "seconds": seconds,
                    "remote": True,
                    "attrs": {
                        "pid": os.getpid(),
                        "descriptors": len(component),
                        "frames": after["frames"] - before["frames"],
                        "memo_hits": after["memo_hits"] - before["memo_hits"],
                    },
                }
            )
    return results, {"metrics": registry.snapshot(), "spans": spans}


def _warm_up_worker(seconds: float) -> bool:
    """Keep one worker busy long enough for the pool to spawn its siblings."""
    time.sleep(seconds)
    return True


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ProcessPoolBackend:
    """A persistent pool of engine-owning worker processes.

    One backend belongs to one :class:`~repro.core.engine.EngineHandle`; the
    handle serialises snapshot re-arms through :meth:`compute`, but
    :meth:`compute` itself may be called from several threads at once (the
    confidence server's session pool) — ``ProcessPoolExecutor`` is
    thread-safe, which is exactly what lets distinct cold queries overlap
    across worker processes.
    """

    def __init__(self, workers: int, *, start_method: str = START_METHOD) -> None:
        if workers < 1:
            raise ValueError(f"process pool needs at least 1 worker, got {workers}")
        self.workers = workers
        self._context = multiprocessing.get_context(start_method)
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._generation = 0
        self._space: "InternedSpace | None" = None
        self._snapshot: SpaceSnapshot | None = None
        self.tasks_dispatched = 0
        self.components_dispatched = 0
        #: Chunks resubmitted to a rebuilt pool after a mid-computation break.
        self.chunk_retries = 0
        #: Pools discarded because they broke (each is rebuilt on demand).
        self.pools_broken = 0

    # -- lifecycle -------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                # A computation racing close() must not spawn a fresh pool
                # nobody would ever shut down again.
                raise WorkerPoolError("the process pool backend is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self._context
                )
            return self._executor

    def _discard_executor(self, executor: ProcessPoolExecutor | None = None) -> None:
        """Drop the current pool (or ``executor``, if it is still current).

        Passing the executor a computation actually used makes concurrent
        breakage safe: when several threads hit the same broken pool, only
        the first discard wins — the others must not tear down the *fresh*
        pool a racing thread already rebuilt for its retry.
        """
        with self._lock:
            if executor is not None and self._executor is not executor:
                return
            current, self._executor = self._executor, None
            if current is not None:
                self.pools_broken += 1
        if current is not None:
            logger.warning(
                "worker pool broke (%d so far); discarding, next computation "
                "rebuilds it",
                self.pools_broken,
            )
            current.shutdown(wait=False, cancel_futures=True)

    def warm_up(self, *, per_worker_seconds: float = 0.05) -> None:
        """Spawn all workers now instead of on the first computation.

        Submits one short sleeper per worker; because each sleeper occupies
        a worker, the pool is forced to start its full complement.  Servers
        call this at startup so the first client never pays spawn latency.
        """
        executor = self._ensure_executor()
        futures = [
            executor.submit(_warm_up_worker, per_worker_seconds)
            for _ in range(self.workers)
        ]
        for future in futures:
            future.result()

    def invalidate(self) -> None:
        """Force a new snapshot generation on the next computation.

        Workers rebuild their cached engines (dropping their memos) when the
        generation changes; the engine handle calls this whenever its own
        engine is retired, so "clear the cache" reaches every process.
        """
        with self._lock:
            self._space = None
            self._snapshot = None

    def close(self) -> None:
        """Shut the pool down for good.

        A :meth:`compute` racing the shutdown raises
        :class:`~repro.errors.WorkerPoolError` instead of silently spawning
        a replacement pool that nothing would ever reap.  (A *broken* pool,
        by contrast, is only discarded — the next computation rebuilds it.)
        """
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    # -- computation -----------------------------------------------------
    def snapshot_of(self, space: "InternedSpace") -> SpaceSnapshot:
        """The (cached) picklable snapshot of the parent's interned space.

        A new generation is minted whenever the space object changes — the
        world table was mutated or conditioned and the engine rebuilt — which
        tells workers to rebuild their cached engines.
        """
        with self._lock:
            snapshot = self._snapshot
            if self._space is not space or snapshot is None:
                self._generation += 1
                self._space = space
                snapshot = SpaceSnapshot.of_space(space, self._generation)
                self._snapshot = snapshot
            return snapshot

    def compute(
        self,
        space: "InternedSpace",
        config: "ExactConfig",
        components: "list[list[PackedDescriptor]]",
        max_calls: int | None,
        time_limit: float | None,
        *,
        metrics: "MetricsRegistry | None" = None,
        spans: "list[dict] | None" = None,
    ) -> list[tuple[float, float]]:
        """``(probability, worker_seconds)`` per component, in component order.

        ``metrics`` (when given) receives each worker's merged histogram
        snapshot — the parent-side fold of per-worker
        ``repro_worker_component_seconds`` recordings.  Passing a ``spans``
        list asks workers to emit one finished remote span payload per
        component; they are appended here, in dispatch order, for the
        caller's tracer to adopt.

        Components are dispatched cost-ordered, largest first, in small
        chunks (:func:`chunk_components` with the
        :func:`~repro.core.heuristics.component_dispatch_cost` estimate), so
        one expensive straggler no longer serialises the pool behind it;
        per-index scattering restores input component order, keeping the
        merged result bit-identical to serial evaluation.  A multi-chunk
        dispatch overlaps with other threads' concurrent ``compute`` calls.
        Worker-raised Python exceptions re-raise here with their own types
        (first failing chunk in dispatch order wins, like the thread
        backend).

        A pool broken mid-computation (worker killed, segfault) does *not*
        fail the computation outright: the broken pool is discarded, a fresh
        one is built, and exactly the chunks whose results were lost are
        resubmitted once — safe because tasks are pure and the memo lives in
        the parent, and bit-identical because the retried chunks recompute
        the same floats.  Only a retry that breaks the pool *again* raises
        :class:`~repro.errors.WorkerPoolError`.
        """
        if not components:
            return []
        snapshot = self.snapshot_of(space)
        costs = [
            component_dispatch_cost(component, snapshot) for component in components
        ]
        plan = chunk_components(components, self.workers, costs)
        chunks = [[components[index] for index in batch] for batch in plan]
        trace = spans is not None
        fault = _faults.take("procpool.worker") if _faults.INJECTOR.armed else None
        outcomes, broken = self._run_chunks(
            snapshot, config, chunks, max_calls, time_limit, fault, trace
        )
        lost = [index for index, outcome in enumerate(outcomes) if outcome is None]
        if lost:
            # The retry is deliberately single-shot: a pool that breaks twice
            # in one computation points at a systematic killer (OOM, a
            # poisonous input) that blind persistence would only amplify.
            self.chunk_retries += len(lost)
            retried, broken_again = self._run_chunks(
                snapshot,
                config,
                [chunks[index] for index in lost],
                max_calls,
                time_limit,
                None,
                trace,
            )
            for index, outcome in zip(lost, retried):
                outcomes[index] = outcome
            if any(outcome is None for outcome in outcomes):
                raise WorkerPoolError(
                    f"process pool broke again while retrying {len(lost)} lost "
                    f"chunk(s): {broken_again or broken}"
                ) from (broken_again or broken)
        error = next(
            (outcome for outcome in outcomes if isinstance(outcome, BaseException)),
            None,
        )
        if error is not None:
            raise error
        self.tasks_dispatched += len(chunks)
        self.components_dispatched += len(components)
        results: list = [None] * len(components)
        for batch, outcome in zip(plan, outcomes):
            entries, meta = outcome
            for index, entry in zip(batch, entries):
                results[index] = entry
            if metrics is not None:
                metrics.merge(meta.get("metrics") or {})
            if spans is not None:
                spans.extend(meta.get("spans") or ())
        return results

    def _run_chunks(
        self,
        snapshot: SpaceSnapshot,
        config: "ExactConfig",
        chunks: "list[list[list[PackedDescriptor]]]",
        max_calls: int | None,
        time_limit: float | None,
        fault: "_faults.Fault | None",
        trace: bool = False,
    ) -> tuple[list, BaseException | None]:
        """Dispatch chunks on the current pool; one outcome slot per chunk.

        Each slot is the chunk's ``(entries, meta)`` pair, the worker-raised
        exception, or ``None`` when the pool broke before the chunk's result
        arrived (the caller decides whether to retry those).  A break
        discards the executor (identity-checked, so concurrent computations
        on the same dead pool discard it exactly once) and is returned for
        exception chaining.  ``fault`` rides with the first chunk only —
        chaos tests kill exactly one worker per armed charge.
        """
        executor = self._ensure_executor()
        futures: list = []
        broken: BaseException | None = None
        for index, chunk in enumerate(chunks):
            try:
                futures.append(
                    executor.submit(
                        _compute_chunk,
                        snapshot,
                        config,
                        chunk,
                        max_calls,
                        time_limit,
                        fault if index == 0 else None,
                        trace,
                    )
                )
            except BrokenExecutor as error:
                broken = broken or error
                futures.append(None)
        outcomes: list = []
        for future in futures:
            if future is None:
                outcomes.append(None)
                continue
            try:
                outcomes.append(future.result())
            except BrokenExecutor as error:
                broken = broken or error
                outcomes.append(None)
            except Exception as error:  # noqa: BLE001 - surfaced by the caller
                outcomes.append(error)
        if broken is not None:
            self._discard_executor(executor)
        return outcomes, broken

    def __repr__(self) -> str:
        state = "idle" if self._executor is None else "running"
        return (
            f"ProcessPoolBackend({self.workers} workers, {state}, "
            f"{self.components_dispatched} components dispatched)"
        )
