"""Figure 12: the number of variables is close to the ws-set size (easy-hard-easy).

Paper setting: 70 variables, r=4, s=4, ws-set sizes 5-5000, indve(minlog) vs
kl(e.001).  Scaled-down setting: 30 variables, r=2, s=4, ws-set sizes 10-160.
Expected shape: exact computation is cheap for tiny ws-sets, becomes hard when
#descriptors ≈ #variables, and (per the paper) becomes easy again once the
ws-set is an order of magnitude larger than the variable set; the Karp-Luby
baseline is comparatively flat and only competitive inside the hard region.

The largest sizes run under an engine time budget (like the paper's 9000s
cap); a timed-out point shows up as a run at roughly the budget.
"""

from __future__ import annotations

import pytest

from repro.approx.karp_luby import karp_luby_confidence
from repro.core.probability import ExactConfig, probability
from repro.errors import BudgetExceededError
from repro.workloads.hard import HardCaseParameters

SIZES = (10, 20, 40, 80, 160)
TIME_LIMIT = 15.0


def _parameters(size: int) -> HardCaseParameters:
    return HardCaseParameters(
        num_variables=30, alternatives=2, descriptor_length=4,
        num_descriptors=size, seed=0,
    )


@pytest.mark.figure("12")
@pytest.mark.parametrize("size", SIZES)
def bench_indve(benchmark, hard_instance_cache, size):
    instance = hard_instance_cache(_parameters(size))
    config = ExactConfig.indve("minlog", time_limit=TIME_LIMIT)

    def run():
        try:
            return probability(instance.ws_set, instance.world_table, config)
        except BudgetExceededError:
            return float("nan")

    value = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["confidence"] = value
    benchmark.extra_info["time_limit"] = TIME_LIMIT


@pytest.mark.figure("12")
@pytest.mark.parametrize("size", (20, 80))
def bench_karp_luby(benchmark, hard_instance_cache, size):
    instance = hard_instance_cache(_parameters(size))
    result = benchmark.pedantic(
        lambda: karp_luby_confidence(
            instance.ws_set,
            instance.world_table,
            0.01,
            0.01,
            seed=0,
            max_iterations=20_000,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["estimate"] = result.estimate
    benchmark.extra_info["iterations"] = result.iterations
