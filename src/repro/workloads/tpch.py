"""A TPC-H-like workload generator (paper, Section 7, Figure 10).

The paper's first data set consists of tuple-independent probabilistic
databases obtained from relational databases produced by TPC-H dbgen: every
tuple carries a Boolean random variable whose probability is chosen at
random.  dbgen itself is not redistributable here, so this module generates a
synthetic equivalent with:

* the same three relations (``customer``, ``orders``, ``lineitem``) and the
  attributes referenced by the two benchmark queries;
* the same cardinality ratios as TPC-H (150 000 customers, 1 500 000 orders,
  ~6 000 000 lineitems at scale factor 1), scaled by the ``scale_factor``;
* the same key relationships (``o_custkey`` → customer, ``l_orderkey`` →
  order) and the same value distributions for the filter attributes
  (market segments, order/ship dates, discount, quantity);
* per-tuple Boolean variables with probabilities drawn uniformly at random,
  exactly as in the paper.

What matters for reproducing Figure 10 is the *shape* of the answer ws-sets:
Q1 joins three relations, so its answer descriptors have length 3 and share
variables heavily, whereas Q2 is a single-relation selection whose answer
descriptors have length 1 and are pairwise independent — which is why INDVE
is dramatically faster on Q2.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

from repro.core.wsset import WSSet
from repro.db.algebra import equijoin, project_to_wsset, select
from repro.db.database import ProbabilisticDatabase
from repro.db.predicates import attr
from repro.db.tuple_independent import tuple_independent_relation
from repro.db.world_table import WorldTable

#: The TPC-H market segments (used by Q1's ``BUILDING`` filter).
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")

#: TPC-H cardinalities at scale factor 1.
CUSTOMERS_AT_SF1 = 150_000
ORDERS_AT_SF1 = 1_500_000
AVERAGE_LINEITEMS_PER_ORDER = 4

CUSTOMER_SCHEMA = ("c_custkey", "c_name", "c_mktsegment", "c_acctbal")
ORDERS_SCHEMA = ("o_orderkey", "o_custkey", "o_orderdate", "o_totalprice")
LINEITEM_SCHEMA = (
    "l_orderkey",
    "l_linenumber",
    "l_quantity",
    "l_discount",
    "l_shipdate",
    "l_extendedprice",
)

_DATE_ORIGIN = datetime.date(1992, 1, 1)
_DATE_SPAN_DAYS = (datetime.date(1998, 8, 2) - _DATE_ORIGIN).days


@dataclass
class TPCHInstance:
    """A generated probabilistic TPC-H-like database plus its size statistics."""

    database: ProbabilisticDatabase
    scale_factor: float
    seed: int
    customer_count: int
    orders_count: int
    lineitem_count: int

    @property
    def variable_count(self) -> int:
        """Total number of Boolean tuple variables (the "#Input Vars" of Figure 10)."""
        return len(self.database.world_table)

    def relation_variable_count(self, *names: str) -> int:
        """Number of tuple variables of the given relations (per-query input size)."""
        total = 0
        for name in names:
            total += len(self.database.relation(name).variables())
        return total


class TPCHGenerator:
    """Seeded generator of tuple-independent TPC-H-like probabilistic databases.

    Examples
    --------
    >>> instance = TPCHGenerator(scale_factor=0.0005, seed=7).generate()
    >>> sorted(instance.database.relation_names)
    ['customer', 'lineitem', 'orders']
    """

    def __init__(
        self,
        scale_factor: float = 0.001,
        seed: int = 0,
        *,
        probability_low: float = 0.05,
        probability_high: float = 0.95,
    ) -> None:
        if scale_factor <= 0:
            raise ValueError(f"scale_factor must be positive, got {scale_factor}")
        self.scale_factor = scale_factor
        self.seed = seed
        self.probability_low = probability_low
        self.probability_high = probability_high

    def generate(self) -> TPCHInstance:
        """Generate the probabilistic database for this generator's scale factor."""
        rng = random.Random(self.seed)
        customer_count = max(1, round(CUSTOMERS_AT_SF1 * self.scale_factor))
        orders_count = max(1, round(ORDERS_AT_SF1 * self.scale_factor))

        world_table = WorldTable()
        database = ProbabilisticDatabase(world_table)

        customers = self._customer_rows(rng, customer_count)
        database.add_relation(
            tuple_independent_relation(
                "customer", CUSTOMER_SCHEMA, self._with_probabilities(rng, customers),
                world_table, variable_prefix="c",
            )
        )

        orders = self._orders_rows(rng, orders_count, customer_count)
        database.add_relation(
            tuple_independent_relation(
                "orders", ORDERS_SCHEMA, self._with_probabilities(rng, orders),
                world_table, variable_prefix="o",
            )
        )

        lineitems = self._lineitem_rows(rng, orders)
        database.add_relation(
            tuple_independent_relation(
                "lineitem", LINEITEM_SCHEMA, self._with_probabilities(rng, lineitems),
                world_table, variable_prefix="l",
            )
        )

        return TPCHInstance(
            database=database,
            scale_factor=self.scale_factor,
            seed=self.seed,
            customer_count=customer_count,
            orders_count=orders_count,
            lineitem_count=len(lineitems),
        )

    # ------------------------------------------------------------------
    # Row generation
    # ------------------------------------------------------------------
    def _with_probabilities(self, rng: random.Random, rows: list[tuple]) -> list:
        return [
            (row, rng.uniform(self.probability_low, self.probability_high))
            for row in rows
        ]

    @staticmethod
    def _random_date(rng: random.Random) -> str:
        offset = rng.randrange(_DATE_SPAN_DAYS)
        return (_DATE_ORIGIN + datetime.timedelta(days=offset)).isoformat()

    def _customer_rows(self, rng: random.Random, count: int) -> list[tuple]:
        rows = []
        for custkey in range(1, count + 1):
            rows.append(
                (
                    custkey,
                    f"Customer#{custkey:09d}",
                    rng.choice(MARKET_SEGMENTS),
                    round(rng.uniform(-999.99, 9999.99), 2),
                )
            )
        return rows

    def _orders_rows(
        self, rng: random.Random, count: int, customer_count: int
    ) -> list[tuple]:
        rows = []
        for orderkey in range(1, count + 1):
            rows.append(
                (
                    orderkey,
                    rng.randint(1, customer_count),
                    self._random_date(rng),
                    round(rng.uniform(800.0, 450_000.0), 2),
                )
            )
        return rows

    def _lineitem_rows(self, rng: random.Random, orders: list[tuple]) -> list[tuple]:
        rows = []
        for order in orders:
            orderkey = order[0]
            line_count = rng.randint(1, 2 * AVERAGE_LINEITEMS_PER_ORDER - 1)
            for linenumber in range(1, line_count + 1):
                quantity = rng.randint(1, 50)
                extended_price = round(quantity * rng.uniform(900.0, 2000.0), 2)
                rows.append(
                    (
                        orderkey,
                        linenumber,
                        quantity,
                        round(rng.choice([i / 100 for i in range(0, 11)]), 2),
                        self._random_date(rng),
                        extended_price,
                    )
                )
        return rows


# ----------------------------------------------------------------------
# The two Boolean queries of Figure 10
# ----------------------------------------------------------------------
def query_q1(
    database: ProbabilisticDatabase,
    *,
    mktsegment: str = "BUILDING",
    orderdate_after: str = "1995-03-15",
) -> WSSet:
    """Q1: three-way join (Figure 10).

    ``select true from customer c, orders o, lineitem l where
    c.mktsegment = 'BUILDING' and c.custkey = o.custkey and
    o.orderkey = l.orderkey and o.orderdate > '1995-03-15'``

    Returns the ws-set of the answer descriptors (length-3 descriptors, one
    Boolean variable per joined tuple), whose probability is the query
    confidence.
    """
    customer = select(
        database.relation("customer"), attr("c_mktsegment") == mktsegment
    )
    orders = select(
        database.relation("orders"), attr("o_orderdate") > orderdate_after
    )
    customer_orders = equijoin(customer, orders, [("c_custkey", "o_custkey")])
    answer = equijoin(
        customer_orders, database.relation("lineitem"), [("o_orderkey", "l_orderkey")]
    )
    return project_to_wsset(answer)


def query_q2(
    database: ProbabilisticDatabase,
    *,
    shipdate_from: str = "1994-01-01",
    shipdate_to: str = "1996-01-01",
    discount_low: float = 0.05,
    discount_high: float = 0.08,
    quantity_below: int = 24,
) -> WSSet:
    """Q2: single-relation selection (Figure 10).

    ``select true from lineitem where shipdate between '1994-01-01' and
    '1996-01-01' and discount between 0.05 and 0.08 and quantity < 24``

    The answer descriptors have length 1 and are pairwise independent, which
    is why this query is the "safe"/PTIME case and INDVE handles it cheaply.
    """
    predicate = (
        attr("l_shipdate").between(shipdate_from, shipdate_to)
        & attr("l_discount").between(discount_low, discount_high)
        & (attr("l_quantity") < quantity_below)
    )
    answer = select(database.relation("lineitem"), predicate)
    return project_to_wsset(answer)


@dataclass
class Figure10Row:
    """One row of the Figure 10 table: query, scale, sizes, and timing slot."""

    query: str
    scale_factor: float
    input_variables: int
    wsset_size: int
    seconds: float = field(default=float("nan"))
