"""Approximate confidence computation baselines (paper, Section 7).

The paper compares its exact algorithms against Monte-Carlo approximation:
the Karp-Luby FPRAS for DNF counting adapted to ws-set confidence
(:mod:`repro.approx.karp_luby`), driven either by the classic fixed iteration
bound or by the optimal-stopping algorithm of Dagum, Karp, Luby and Ross
(:mod:`repro.approx.stopping`).  A naive Monte-Carlo estimator
(:mod:`repro.approx.montecarlo`) is included as a further baseline.
"""

from repro.approx.karp_luby import (
    KarpLubyEstimator,
    karp_luby_confidence,
    ApproximationResult,
)
from repro.approx.montecarlo import naive_monte_carlo_confidence
from repro.approx.stopping import (
    karp_luby_iteration_bound,
    optimal_stopping_rule,
    StoppingRuleResult,
)

__all__ = [
    "KarpLubyEstimator",
    "karp_luby_confidence",
    "ApproximationResult",
    "naive_monte_carlo_confidence",
    "karp_luby_iteration_bound",
    "optimal_stopping_rule",
    "StoppingRuleResult",
]
