"""Server mode in one file: embed a ConfidenceServer, query it over TCP.

Starts the confidence server on an ephemeral port inside this process (the
same engine the CLI ``python -m repro.server`` runs), then connects with the
blocking client library and exercises the whole surface: single confidence
queries (exact and hybrid with a per-request seed), the per-tuple batch, SQL,
and the shared-engine statistics that show the memo cache working across
connections.

Run with::

    PYTHONPATH=src python examples/server_quickstart.py
"""

from __future__ import annotations

import asyncio
import threading

from repro.db.database import ProbabilisticDatabase
from repro.server import ConfidenceServer, connect


def build_database() -> ProbabilisticDatabase:
    """The SSN database of the paper's introduction (Figure 1 / Figure 2)."""
    db = ProbabilisticDatabase()
    db.world_table.add_variable("j", {1: 0.2, 7: 0.8})  # John's SSN
    db.world_table.add_variable("b", {4: 0.3, 7: 0.7})  # Bill's SSN
    relation = db.create_relation("R", ("SSN", "NAME"))
    relation.add({"j": 1}, (1, "John"))
    relation.add({"j": 7}, (7, "John"))
    relation.add({"b": 4}, (4, "Bill"))
    relation.add({"b": 7}, (7, "Bill"))
    return db


class EmbeddedServer:
    """A ConfidenceServer on a background thread (its own event loop)."""

    def __init__(self, database: ProbabilisticDatabase) -> None:
        self._database = database
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.address: tuple[str, int] | None = None

    def __enter__(self) -> "EmbeddedServer":
        self._thread.start()
        if not self._ready.wait(timeout=10) or self._loop is None:
            raise RuntimeError(f"server failed to start: {self._error!r}")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    def _run(self) -> None:
        async def main() -> None:
            try:
                server = ConfidenceServer(self._database, port=0, pool_size=4)
                self.address = await server.start()
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
            except BaseException as error:
                self._error = error
                raise
            finally:
                self._ready.set()
            await self._stop.wait()
            await server.stop()

        asyncio.run(main())


def main() -> None:
    database = build_database()
    with EmbeddedServer(database) as embedded:
        host, port = embedded.address
        print(f"server listening on {host}:{port}")

        with connect(host, port) as session:
            print("ping:", session.ping())

            answer = session.confidence("R")
            print(f"P(R nonempty) = {answer.value:.4f} via {answer.method}")

            hybrid = session.confidence("R", method="hybrid", seed=7)
            print(f"hybrid answered by {hybrid.method} (fell back: {hybrid.fell_back})")

            print("conf() per tuple:")
            for row in session.confidence_batch("R"):
                print(f"  {row.values}: {row.confidence:.4f}")

            result = session.execute("select SSN, conf() from R where NAME = 'Bill'")
            print("SQL:", result.columns, result.rows)

        # A second connection reuses the same engine: repeated work is served
        # from the memo cache warmed by the first connection.
        with connect(host, port) as session:
            session.confidence("R")
            stats = session.statistics()
            print(
                f"shared engine after two connections: "
                f"{stats.computations} computations, "
                f"memo hit rate {stats.memo_hit_rate:.2f}"
            )

    print("server stopped cleanly")


if __name__ == "__main__":
    main()
