"""The ``conf()`` aggregate: tuple confidence computation over U-relations.

The confidence of a tuple ``t`` in (the result of a query on) a probabilistic
database is the combined probability weight of all possible worlds in which
``t`` is present.  On U-relations this is the probability of the ws-set of all
row descriptors carrying the value of ``t`` — exactly the quantity computed by
the exact engines of :mod:`repro.core.probability`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.probability import ExactConfig, probability
from repro.core.wsset import WSSet
from repro.db.urelation import URelation

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import WorldTable


@dataclass(frozen=True)
class ConfidenceRow:
    """One row of a ``select A..., conf() from ...`` result."""

    values: tuple
    confidence: float

    def as_dict(self, attributes: Sequence[str]) -> dict:
        """``attribute -> value`` mapping plus the ``conf`` column."""
        row = dict(zip(attributes, self.values))
        row["conf"] = self.confidence
        return row


def confidence_by_tuple(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
) -> list[ConfidenceRow]:
    """Confidence of each distinct value tuple of ``relation``.

    This closes the possible-worlds semantics: the result is an ordinary
    relation of value tuples with a numerical confidence column, as in the
    query ``select SSN, conf(SSN) from R where NAME = 'Bill'`` of the paper's
    introduction.
    """
    grouped: dict[tuple, list] = {}
    for row in relation:
        grouped.setdefault(row.values, []).append(row.descriptor)
    results = []
    for values, descriptors in grouped.items():
        ws_set = WSSet(descriptors)
        results.append(ConfidenceRow(values, probability(ws_set, world_table, config)))
    return results


def confidence_of_relation(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
) -> float:
    """Confidence of the Boolean query "the relation is nonempty".

    This is ``P(π_∅(relation))``: the probability of the union of all row
    descriptors — the quantity measured throughout the paper's experiments.
    """
    return probability(relation.descriptors(), world_table, config)


def certain_tuples(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    tolerance: float = 1e-9,
) -> list[tuple]:
    """The value tuples present in *every* world (``where conf(...) = 1``).

    This is the query from the introduction that motivates exact (rather than
    approximate) confidence computation: Monte-Carlo estimators independently
    underestimate each tuple's confidence and therefore miss certain answers
    with high probability.
    """
    return [
        row.values
        for row in confidence_by_tuple(relation, world_table, config)
        if row.confidence >= 1.0 - tolerance
    ]


def possible_tuples(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    threshold: float = 0.0,
) -> list[ConfidenceRow]:
    """Value tuples whose confidence exceeds ``threshold`` (default: possible at all)."""
    return [
        row
        for row in confidence_by_tuple(relation, world_table, config)
        if row.confidence > threshold
    ]
