"""Translating ws-sets into ws-trees: the ComputeTree procedure (paper, Figure 4).

The decomposition is a divide-and-conquer recursion with two rules:

* **independent partitioning** — if the ws-set splits into variable-disjoint
  subsets (connected components of the variable co-occurrence graph), emit an
  ⊗-node whose children are the recursive translations of the components;
* **variable elimination** — otherwise choose a variable ``x`` (using a
  heuristic from :mod:`repro.core.heuristics`) and emit an ⊕-node with one
  branch per domain value ``i`` of ``x``, recursing on
  ``S_{x→i} ∪ T`` where ``S_{x→i}`` are the descriptors containing ``x → i``
  with that assignment removed and ``T`` are the descriptors not mentioning
  ``x``.  Domain values not occurring in the ws-set share a single
  translation of ``T`` (the footnote to Figure 4).

The recursion bottoms out at ⊥ for the empty ws-set and at the ∅ leaf as soon
as the ws-set contains the nullary descriptor.

This module materialises the explicit :class:`~repro.core.wstree.WSTree`;
confidence computation and conditioning use the same recursion *fused* with
the probability computation (see :mod:`repro.core.probability` and
:mod:`repro.core.conditioning`), exactly as the paper's implementation does.
"""

from __future__ import annotations

import contextlib
import itertools
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.descriptors import WSDescriptor
from repro.core.heuristics import Heuristic, count_occurrences, make_heuristic
from repro.core.wsset import WSSet
from repro.core.wstree import BOTTOM, LEAF, IndependentNode, VariableNode, WSTree
from repro.errors import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import Value, Variable, WorldTable
else:
    Variable = object
    Value = object

#: Internal descriptor representation used by the decomposition engine: plain
#: dicts are noticeably faster than :class:`WSDescriptor` objects in the hot
#: recursion, and the engine never needs hashing of whole descriptors.
Descriptor = dict

#: Recursion depth the engines guarantee to support.  One variable is
#: eliminated per level, so the depth is bounded by the number of variables of
#: the largest connected component plus a small constant; large instances can
#: exceed CPython's default limit of 1000.
GUARANTEED_RECURSION_DEPTH = 20_000


@contextlib.contextmanager
def recursion_guard(minimum: int = GUARANTEED_RECURSION_DEPTH):
    """Temporarily raise the interpreter recursion limit for deep eliminations."""
    previous = sys.getrecursionlimit()
    if previous < minimum:
        sys.setrecursionlimit(minimum)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


@dataclass
class DecompositionStats:
    """Counters describing one decomposition / confidence computation run."""

    recursive_calls: int = 0
    independent_nodes: int = 0
    variable_nodes: int = 0
    leaf_nodes: int = 0
    bottom_nodes: int = 0
    #: Small sub-ws-sets (up to the interned engine's closed-form limit,
    #: see ``repro.core.interned._CLOSED_FORM_LIMIT``) resolved by the
    #: inclusion-exclusion closed form instead of a decomposition subtree.
    closed_form_nodes: int = 0
    max_depth: int = 0
    eliminated_variables: list = field(default_factory=list)

    def node_count(self) -> int:
        """Total number of ws-tree nodes produced (or that would be produced)."""
        return (
            self.independent_nodes
            + self.variable_nodes
            + self.leaf_nodes
            + self.bottom_nodes
        )


class Budget:
    """Optional resource guard shared by the recursive engines.

    Raises :class:`~repro.errors.BudgetExceededError` when the number of
    recursive calls or the elapsed wall-clock time exceeds the limits.  Both
    limits are optional; the default budget is unlimited.
    """

    __slots__ = ("max_calls", "time_limit", "_calls", "_started")

    def __init__(
        self, max_calls: int | None = None, time_limit: float | None = None
    ) -> None:
        self.max_calls = max_calls
        self.time_limit = time_limit
        self._calls = 0
        self._started = time.monotonic()

    def tick(self) -> None:
        """Record one recursive call and enforce the limits.

        The call-count limit is exact.  The wall-clock check runs on the very
        first call and every 256th call thereafter; when no ``max_calls`` cap
        is set the clock is the *only* guard, so it is then checked on every
        call rather than letting a slow expansion overshoot by up to 255
        calls.
        """
        self._calls += 1
        if self.max_calls is not None and self._calls > self.max_calls:
            raise BudgetExceededError(
                f"decomposition exceeded {self.max_calls} recursive calls",
                nodes=self._calls,
            )
        if self.time_limit is not None and (
            self.max_calls is None or self._calls == 1 or self._calls % 256 == 0
        ):
            elapsed = time.monotonic() - self._started
            if elapsed > self.time_limit:
                raise BudgetExceededError(
                    f"decomposition exceeded the time limit of {self.time_limit}s",
                    elapsed=elapsed,
                    nodes=self._calls,
                )

    @property
    def calls(self) -> int:
        return self._calls


class BoundedMemo(dict):
    """A memo cache with a size bound and clear-half eviction.

    Behaves like a plain ``dict`` except that inserting a *new* key while the
    cache holds ``max_entries`` entries first evicts the oldest half of the
    entries (dicts iterate in insertion order, so the front of the dict is the
    least recently *inserted* half).  Hits do not refresh entries — this is
    deliberately FIFO-flavoured: eviction happens in one O(n) sweep every
    ``max_entries / 2`` insertions instead of per-lookup bookkeeping on the
    engines' hottest path.  Used for long-running shared engines (sessions,
    servers) whose memo would otherwise grow without bound.
    """

    __slots__ = ("max_entries", "evictions")

    def __init__(self, max_entries: int) -> None:
        super().__init__()
        if max_entries < 2:
            raise ValueError("memo_limit must be at least 2")
        self.max_entries = max_entries
        self.evictions = 0

    def __setitem__(self, key, value) -> None:
        if len(self) >= self.max_entries and key not in self:
            drop = len(self) - self.max_entries // 2
            for stale in list(itertools.islice(iter(self), drop)):
                del self[stale]
            self.evictions += drop
        super().__setitem__(key, value)


def make_memo(max_entries: "int | None") -> dict:
    """The memo dict used by the engines: bounded iff ``max_entries`` is set."""
    return BoundedMemo(max_entries) if max_entries is not None else {}


# ----------------------------------------------------------------------
# Shared engine helpers (also used by probability / conditioning)
# ----------------------------------------------------------------------
def to_internal(ws_set: WSSet) -> list[Descriptor]:
    """Convert a :class:`WSSet` into the engine's plain-dict representation."""
    return [dict(descriptor.items()) for descriptor in ws_set]


def kept_after_subsumption(items: list[set]) -> list[int]:
    """Indices of the items surviving subsumption removal, in input order.

    An item is *subsumed* when another item is a subset of it — a strict
    subset, or an equal set occurring earlier in the input (so among exact
    duplicates the first occurrence wins).  Items are processed in ascending
    size (ties broken by input position) and candidates are only tested
    against the already-kept, smaller-or-equal items; testing against removed
    items is unnecessary because subsumption is transitive.
    """
    order = sorted(range(len(items)), key=lambda index: (len(items[index]), index))
    kept: list[int] = []
    kept_sets: list[set] = []
    for index in order:
        candidate = items[index]
        for smaller in kept_sets:
            if smaller <= candidate:
                break
        else:
            kept.append(index)
            kept_sets.append(candidate)
    kept.sort()
    return kept


def remove_subsumed(descriptors: list[Descriptor]) -> list[Descriptor]:
    """Drop descriptors that extend (are contained in) another descriptor.

    Exposing containment helps the independence check (Example 3.2 of the
    paper).  Candidates are tested only against strictly-smaller-or-equal
    surviving descriptors (a size-sorted pass); among duplicates the first
    occurrence wins, and the output preserves the input order.
    """
    if len(descriptors) <= 1:
        return list(descriptors)
    kept = kept_after_subsumption([set(d.items()) for d in descriptors])
    if len(kept) == len(descriptors):
        return list(descriptors)
    return [descriptors[index] for index in kept]


def deduplicate(descriptors: list[Descriptor]) -> list[Descriptor]:
    """Remove exact duplicate descriptors, preserving first-occurrence order."""
    seen: set[frozenset] = set()
    unique: list[Descriptor] = []
    for descriptor in descriptors:
        key = frozenset(descriptor.items())
        if key not in seen:
            seen.add(key)
            unique.append(descriptor)
    return unique


def connected_components(descriptors: list[Descriptor]) -> list[list[Descriptor]]:
    """Partition a ws-set into variable-disjoint (independent) components.

    Components are the connected components of the graph whose nodes are the
    variables and whose edges link variables co-occurring in a descriptor;
    each descriptor belongs to exactly one component.  Computed with a
    union-find structure in near-linear time, as suggested in Section 4.2.
    """
    parent: dict = {}

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for descriptor in descriptors:
        variables = list(descriptor)
        for variable in variables:
            parent.setdefault(variable, variable)
        first = variables[0]
        for variable in variables[1:]:
            union(first, variable)

    groups: dict = {}
    for descriptor in descriptors:
        root = find(next(iter(descriptor)))
        groups.setdefault(root, []).append(descriptor)
    return list(groups.values())


def split_on_variable(
    descriptors: list[Descriptor], variable: Variable
) -> tuple[dict, list[Descriptor]]:
    """Split a ws-set on ``variable``.

    Returns ``(by_value, unmentioned)`` where ``by_value[i]`` is the list of
    descriptors containing ``variable -> i`` with that assignment removed
    (``S_{x→i}`` in Figure 4) and ``unmentioned`` is ``T``, the descriptors
    that do not mention the variable.
    """
    by_value: dict = {}
    unmentioned: list[Descriptor] = []
    for descriptor in descriptors:
        if variable in descriptor:
            reduced = {k: v for k, v in descriptor.items() if k != variable}
            by_value.setdefault(descriptor[variable], []).append(reduced)
        else:
            unmentioned.append(descriptor)
    return by_value, unmentioned


# ----------------------------------------------------------------------
# ComputeTree
# ----------------------------------------------------------------------
def compute_tree(
    ws_set: WSSet,
    world_table: "WorldTable",
    *,
    heuristic: "str | Heuristic" = "minlog",
    use_independent_partitioning: bool = True,
    simplify_subsumed: bool = True,
    budget: Budget | None = None,
    stats: DecompositionStats | None = None,
) -> WSTree:
    """Translate a ws-set into an equivalent ws-tree (Figure 4, ComputeTree).

    Parameters
    ----------
    ws_set:
        The ws-set to translate.
    world_table:
        Supplies the variable domains (needed to enumerate branches and by the
        heuristics' cost estimates).
    heuristic:
        Variable-elimination heuristic name or instance (default ``minlog``).
    use_independent_partitioning:
        When true (INDVE) the ⊗-rule is tried before every variable
        elimination; when false (VE) only variable elimination is used.
    simplify_subsumed:
        Remove subsumed descriptors before decomposing (helps expose
        independence, see Example 3.2).
    budget:
        Optional :class:`Budget` limiting recursion count / wall-clock time.
    stats:
        Optional :class:`DecompositionStats` to fill with counters.

    Returns
    -------
    WSTree
        A tree representing exactly the same world-set (Theorem 4.4), which
        can be checked via ``tree.to_wsset()`` and validated with
        ``tree.validate(world_table)``.
    """
    chooser = make_heuristic(heuristic)
    budget = budget or Budget()
    stats = stats if stats is not None else DecompositionStats()
    descriptors = deduplicate(to_internal(ws_set))
    if simplify_subsumed:
        descriptors = remove_subsumed(descriptors)
    with recursion_guard():
        return _compute_tree(
            descriptors,
            world_table,
            chooser,
            use_independent_partitioning,
            budget,
            stats,
            depth=0,
        )


def _compute_tree(
    descriptors: list[Descriptor],
    world_table: "WorldTable",
    heuristic: Heuristic,
    use_independent_partitioning: bool,
    budget: Budget,
    stats: DecompositionStats,
    depth: int,
) -> WSTree:
    budget.tick()
    stats.recursive_calls += 1
    stats.max_depth = max(stats.max_depth, depth)

    if not descriptors:
        stats.bottom_nodes += 1
        return BOTTOM
    if any(not descriptor for descriptor in descriptors):
        stats.leaf_nodes += 1
        return LEAF

    if use_independent_partitioning:
        components = connected_components(descriptors)
        if len(components) > 1:
            stats.independent_nodes += 1
            children = tuple(
                _compute_tree(
                    component,
                    world_table,
                    heuristic,
                    use_independent_partitioning,
                    budget,
                    stats,
                    depth + 1,
                )
                for component in components
            )
            return IndependentNode(children)

    occurrences = count_occurrences(descriptors)
    variable = heuristic.select_variable(occurrences, len(descriptors), world_table)
    stats.eliminated_variables.append(variable)
    by_value, unmentioned = split_on_variable(descriptors, variable)

    stats.variable_nodes += 1
    branches: list[tuple[Value, WSTree]] = []
    shared_t_subtree: WSTree | None = None
    for value in world_table.domain(variable):
        if value in by_value:
            subset = deduplicate(by_value[value] + unmentioned)
            child = _compute_tree(
                subset,
                world_table,
                heuristic,
                use_independent_partitioning,
                budget,
                stats,
                depth + 1,
            )
        else:
            # Values not occurring in the ws-set all lead to ComputeTree(T);
            # translate T only once and share the subtree (Figure 4, footnote).
            if shared_t_subtree is None:
                shared_t_subtree = _compute_tree(
                    list(unmentioned),
                    world_table,
                    heuristic,
                    use_independent_partitioning,
                    budget,
                    stats,
                    depth + 1,
                )
            child = shared_t_subtree
        if isinstance(child, type(BOTTOM)):
            # An all-⊥ branch contributes nothing; VariableNode treats missing
            # values as ⊥, so we can omit the edge entirely.
            continue
        branches.append((value, child))

    if not branches:
        stats.bottom_nodes += 1
        return BOTTOM
    return VariableNode(variable, tuple(branches))


def tree_to_wsset(tree: WSTree) -> WSSet:
    """The ws-set of all root-to-leaf paths of ``tree`` (its world-set)."""
    return tree.to_wsset()


def wsset_from_paths(paths: list[dict]) -> WSSet:
    """Build a :class:`WSSet` from raw path-annotation dictionaries."""
    return WSSet(WSDescriptor(path) for path in paths)
