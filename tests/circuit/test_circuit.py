"""Lineage circuits: compile-once / evaluate-many against the engine's truth.

The load-bearing invariant everywhere: a compiled
:class:`~repro.circuit.circuit.Circuit` answers exactly what the interned
engine answers — bit-identical at the recording weights, within 1e-12 under
any re-weighting — because the decomposition's *structure* never depended on
the weights in the first place.
"""

from __future__ import annotations

import pytest

from repro.core.engine import EngineHandle
from repro.core.probability import ExactConfig
from repro.core.wsset import WSSet
from repro.db.database import ProbabilisticDatabase
from repro.db.session import Session
from repro.db.world_table import WorldTable
from repro.errors import (
    BudgetExceededError,
    InvalidDistributionError,
    QueryError,
    UnknownValueError,
    UnknownVariableError,
)
from repro.workloads.hard import HardCaseParameters, generate_hard_instance

TOLERANCE = 1e-12


@pytest.fixture
def world_table() -> WorldTable:
    table = WorldTable()
    table.add_variable("x", {1: 0.3, 2: 0.7})
    table.add_variable("y", {1: 0.4, 2: 0.6})
    table.add_variable("z", {1: 0.2, 2: 0.3, 3: 0.5})
    return table


@pytest.fixture
def ws_set() -> WSSet:
    return WSSet([{"x": 1}, {"y": 1, "z": 2}, {"x": 2, "z": 1}])


def hard_instance(num_descriptors: int = 24):
    return generate_hard_instance(
        HardCaseParameters(
            num_variables=16,
            alternatives=2,
            descriptor_length=4,
            num_descriptors=num_descriptors,
            seed=0,
        )
    )


class TestEvaluate:
    def test_baseline_is_bit_identical_to_confidence(self, world_table, ws_set):
        session = Session(world_table)
        expected = session.confidence(ws_set).value
        circuit = session.compile(ws_set)
        assert circuit.evaluate() == expected

    def test_hard_instance_bit_identical(self):
        instance = hard_instance()
        session = Session(instance.world_table)
        expected = session.confidence(instance.ws_set).value
        assert session.compile(instance.ws_set).evaluate() == expected

    def test_bit_identical_across_configs(self):
        instance = hard_instance(16)
        configs = [
            ExactConfig(),
            ExactConfig(use_independent_partitioning=False),
            ExactConfig(subsumption_every_step=True),
            ExactConfig(memoize=False),
            ExactConfig(numpy_threshold=2),
        ]
        for config in configs:
            session = Session(instance.world_table, config)
            expected = session.confidence(instance.ws_set).value
            assert session.compile(instance.ws_set).evaluate() == expected, config

    def test_override_matches_fresh_session(self, world_table, ws_set):
        session = Session(world_table)
        circuit = session.compile(ws_set)
        overrides = {"x": {1: 0.9, 2: 0.1}, "z": {1: 0.6, 2: 0.3, 3: 0.1}}

        reference_table = WorldTable()
        reference_table.add_variable("x", overrides["x"])
        reference_table.add_variable("y", {1: 0.4, 2: 0.6})
        reference_table.add_variable("z", overrides["z"])
        expected = Session(reference_table).confidence(ws_set).value
        assert circuit.evaluate(overrides) == pytest.approx(expected, abs=TOLERANCE)

    def test_zero_weight_branches_stay_evaluable(self):
        # The engine would skip a zero-weight branch; the circuit records it
        # so a re-weighting can revive it.
        table = WorldTable()
        table.add_variable("x", {1: 0.0, 2: 1.0})
        table.add_variable("y", {1: 0.5, 2: 0.5})
        ws = WSSet([{"x": 1, "y": 1}, {"y": 2}])
        session = Session(table)
        circuit = session.compile(ws)
        assert circuit.evaluate() == session.confidence(ws).value
        revived = circuit.evaluate({"x": {1: 1.0, 2: 0.0}})
        reference = WorldTable()
        reference.add_variable("x", {1: 1.0, 2: 0.0})
        reference.add_variable("y", {1: 0.5, 2: 0.5})
        assert revived == pytest.approx(
            Session(reference).confidence(ws).value, abs=TOLERANCE
        )

    def test_override_validation(self, world_table, ws_set):
        circuit = Session(world_table).compile(ws_set)
        with pytest.raises(UnknownVariableError):
            circuit.evaluate({"nope": {1: 0.5, 2: 0.5}})
        with pytest.raises(UnknownValueError):
            circuit.evaluate({"x": {1: 0.5, 9: 0.5}})
        with pytest.raises(InvalidDistributionError):
            circuit.evaluate({"x": {1: 0.5, 2: 0.1}})  # does not sum to one
        with pytest.raises(InvalidDistributionError):
            circuit.evaluate({"x": {1: -0.2, 2: 1.2}})
        with pytest.raises(InvalidDistributionError):
            circuit.evaluate({"x": {1: 0.5}})  # partial domain


class TestSweepAndGradient:
    def test_sweep_matches_per_point_sessions(self, world_table, ws_set):
        session = Session(world_table)
        circuit = session.compile(ws_set)
        ps = [0.0, 0.2, 0.5, 0.8, 1.0]
        values = circuit.evaluate_sweep("x", ps, value=1)
        for p, value in zip(ps, values):
            table = WorldTable()
            table.add_variable("x", {1: p, 2: 1.0 - p})
            table.add_variable("y", {1: 0.4, 2: 0.6})
            table.add_variable("z", {1: 0.2, 2: 0.3, 3: 0.5})
            expected = Session(table).confidence(ws_set).value
            assert value == pytest.approx(expected, abs=TOLERANCE)

    def test_sweep_default_value_and_validation(self, world_table, ws_set):
        circuit = Session(world_table).compile(ws_set)
        # value=None sweeps the first domain value.
        assert circuit.evaluate_sweep("x", [0.3]) == pytest.approx(
            circuit.evaluate_sweep("x", [0.3], value=1)
        )
        assert circuit.evaluate_sweep("x", []) == []
        with pytest.raises(UnknownVariableError):
            circuit.evaluate_sweep("nope", [0.5])
        with pytest.raises(UnknownValueError):
            circuit.evaluate_sweep("x", [0.5], value=9)
        with pytest.raises(InvalidDistributionError):
            circuit.evaluate_sweep("x", [1.5])

    def test_gradient_matches_finite_differences(self, world_table, ws_set):
        # evaluate() insists on normalised rows, so probe the directional
        # derivative of moving mass from value b to value a: the difference
        # of the two partials.
        session = Session(world_table)
        circuit = session.compile(ws_set)
        gradient = circuit.gradient()
        step = 1e-6
        for variable in circuit.variables:
            row = dict(world_table.distribution(variable))
            values = sorted(row)
            for a, b in zip(values, values[1:]):
                up, down = dict(row), dict(row)
                up[a] += step
                up[b] -= step
                down[a] -= step
                down[b] += step
                numeric = (
                    circuit.evaluate({variable: up})
                    - circuit.evaluate({variable: down})
                ) / (2 * step)
                # Slots the lineage never touches have zero derivative and
                # are absent from the gradient dict.
                expected = gradient.get((variable, a), 0.0) - gradient.get(
                    (variable, b), 0.0
                )
                assert expected == pytest.approx(numeric, abs=1e-5)

    def test_sensitivity_is_reparameterised_derivative(self, world_table, ws_set):
        circuit = Session(world_table).compile(ws_set)
        step = 1e-6
        p0 = 0.3  # weight of x=1
        up = circuit.evaluate_sweep("x", [p0 + step], value=1)[0]
        down = circuit.evaluate_sweep("x", [p0 - step], value=1)[0]
        numeric = (up - down) / (2 * step)
        assert circuit.sensitivity("x", value=1) == pytest.approx(numeric, abs=1e-5)


class TestCacheAndInvalidation:
    def test_cache_hit_returns_same_object_and_counts(self, world_table, ws_set):
        session = Session(world_table)
        first = session.compile(ws_set)
        second = session.compile(ws_set)
        assert first is second
        stats = session.statistics()
        assert stats.circuits_compiled == 1
        assert stats.circuit_cache_hits == 1
        assert stats.circuit_compile_time > 0.0

    def test_what_if_counts_evals(self, world_table, ws_set):
        session = Session(world_table)
        session.what_if(ws_set, "x", [0.1, 0.9], value=1)
        stats = session.statistics()
        assert stats.circuits_compiled == 1
        assert stats.circuit_evals == 1
        assert stats.circuit_eval_time > 0.0

    def test_conditioning_invalidates_only_touched_circuits(self):
        database = ProbabilisticDatabase()
        table = database.world_table
        table.add_variable("x", {1: 0.3, 2: 0.7})
        table.add_variable("y", {1: 0.4, 2: 0.6})
        table.add_variable("z", {1: 0.5, 2: 0.5})
        # The posterior keeps exactly the variables its relations still use.
        relation = database.create_relation("R", ("A",))
        relation.add({"x": 1}, ("a",))
        relation.add({"y": 1}, ("b",))
        relation.add({"z": 1}, ("c",))
        session = database.session()
        xy = session.compile(WSSet([{"x": 1}, {"y": 1}]))
        z = session.compile(WSSet([{"z": 1}]))

        database.assert_condition(WSSet([{"z": 1}]))

        # Conditioning made z certain, so the posterior table dropped it:
        # the z circuit cannot be rebound, and a fresh compile of its
        # lineage fails the same way a confidence query would.
        with pytest.raises(UnknownVariableError):
            session.compile(WSSet([{"z": 1}]))
        assert z.evaluate() == pytest.approx(0.5)  # the stale object still works
        # The x/y circuit's variables kept their distributions: rebound onto
        # the posterior space, still answering what the engine answers.
        xy_after = session.compile(WSSet([{"x": 1}, {"y": 1}]))
        assert xy_after is xy
        assert xy_after.evaluate() == (
            session.confidence(WSSet([{"x": 1}, {"y": 1}])).value
        )

    def test_reweighting_invalidates_touched_circuit(self, world_table, ws_set):
        session = Session(world_table)
        circuit = session.compile(ws_set)
        world_table.set_distribution("x", {1: 0.8, 2: 0.2})
        recompiled = session.compile(ws_set)
        assert recompiled is not circuit
        assert recompiled.evaluate() == session.confidence(ws_set).value

    def test_untouched_circuit_survives_reweighting(self, world_table):
        session = Session(world_table)
        xy = session.compile(WSSet([{"x": 1}, {"y": 2}]))
        world_table.set_distribution("z", {1: 0.9, 2: 0.05, 3: 0.05})
        assert session.compile(WSSet([{"x": 1}, {"y": 2}])) is xy
        assert xy.evaluate() == (
            session.confidence(WSSet([{"x": 1}, {"y": 2}])).value
        )

    def test_explicit_invalidate_clears_circuits(self, world_table, ws_set):
        session = Session(world_table)
        first = session.compile(ws_set)
        session.handle.invalidate()
        assert session.compile(ws_set) is not first


class TestCompileSurface:
    def test_compile_requires_interned_engine(self, world_table, ws_set):
        session = Session(world_table, ExactConfig(engine="legacy"))
        with pytest.raises(QueryError):
            session.compile(ws_set)

    def test_compile_is_budgeted(self):
        instance = hard_instance(40)
        session = Session(instance.world_table)
        with pytest.raises(BudgetExceededError):
            session.compile(instance.ws_set, max_calls=3)

    def test_empty_and_certain_targets(self, world_table):
        session = Session(world_table)
        assert session.compile(WSSet([])).evaluate() == 0.0
        assert session.compile(WSSet([{}])).evaluate() == 1.0


class TestProbabilityMany:
    def test_process_batch_equals_serial_loop(self):
        instance = hard_instance(20)
        descriptors = list(instance.ws_set)
        groups = [
            WSSet(descriptors[0:8]),
            WSSet(descriptors[8:14]),
            WSSet(descriptors[14:20]),
            WSSet([]),
            WSSet([{}]),
        ]
        serial = EngineHandle(instance.world_table, ExactConfig())
        expected = [serial.probability(group) for group in groups]
        pooled = EngineHandle(
            instance.world_table, ExactConfig(executor="process"), workers=2
        )
        try:
            values = pooled.probability_many(groups)
        finally:
            pooled.close()
        assert values == expected
        assert values[3] == 0.0 and values[4] == 1.0

    def test_confidence_batch_routes_through_pool(self):
        database = ProbabilisticDatabase()
        table = database.world_table
        table.add_variable("x", {1: 0.3, 2: 0.7})
        table.add_variable("y", {1: 0.4, 2: 0.6})
        relation = database.create_relation("R", ("A",))
        relation.add({"x": 1}, ("a",))
        relation.add({"y": 1}, ("a",))
        relation.add({"x": 2, "y": 2}, ("b",))
        serial_rows = database.session().confidence_batch("R")
        with Session(database, executor="process", workers=2) as pooled:
            pooled_rows = pooled.confidence_batch("R")
            stats = pooled.statistics()
        assert pooled_rows == serial_rows
        assert stats.parallel_computations >= 1
