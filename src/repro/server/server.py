"""The asyncio TCP confidence server.

A :class:`ConfidenceServer` owns one
:class:`~repro.db.database.ProbabilisticDatabase` and a
:class:`~repro.db.session.SessionPool` over it, and serves the wire protocol
of :mod:`repro.server.protocol` to any number of concurrent connections.
Because every pool member wraps the same session, all connections share one
engine handle — one interned id space and one memo cache — so a sub-problem
solved for one client is a memo hit for every other client (the whole point
of server mode over per-process sessions).

Request handling is deliberately forgiving: malformed JSON, oversized frames,
unsupported protocol versions and unknown operations are answered with error
frames on the same connection instead of dropping it, and any
:class:`~repro.errors.ReproError` raised by a computation travels back as a
structured error frame with a stable code.  Only transport-level failures
(EOF, truncated frames) close a connection — and never the server.

Serving is fault-tolerant (protocol v3):

* **admission control** — computation-bearing operations pass a bounded
  admission queue (:class:`_AdmissionQueue`): at most ``max_inflight``
  compute concurrently, at most ``max_queue`` wait, and anything beyond that
  is *shed* with an ``overloaded`` error carrying a ``retry_after_ms``
  estimate.  ``ping`` / ``health`` / ``stats`` bypass admission, so the
  server stays observable while saturated;
* **deadlines** — a request frame's ``deadline_ms`` bounds its whole server
  residency.  The admission wait is cut short when the deadline would pass
  in the queue (``deadline-exceeded``), and for ``confidence`` /
  ``confidence_many`` the *remaining* time is folded into the session
  request, where an overrunning exact computation degrades to a Karp-Luby
  (ε, δ) answer instead of erroring (see
  :meth:`repro.db.session.Session.query`);
* **graceful drain** — :meth:`stop` stops accepting, lets in-flight requests
  finish (and answer) for a grace period, sheds newly arriving work as
  ``overloaded``, and only then force-closes connections.

Typical embedded use::

    server = ConfidenceServer(database, port=0)
    await server.start()
    host, port = server.address
    ...
    await server.stop()

``python -m repro.server`` wraps this in a CLI with workload bootstrapping
and graceful signal-driven shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import time
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.db.api import target_from_payload
from repro.db.session import ConfidenceRequest, SessionPool
from repro.obs.metrics import MetricsRegistry, merge_snapshots, render_prometheus
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    QueryError,
    ReproError,
)
from repro.server import protocol
from repro.testing import faults as _faults
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    OPS_SINCE_VERSION,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    error_frame,
    ok_frame,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.probability import ExactConfig
    from repro.db.database import ProbabilisticDatabase
    from repro.db.session import ConfidenceResult

logger = logging.getLogger("repro.server")

#: Slow requests go here as one JSON object per line (``--slow-query-ms``).
slow_query_logger = logging.getLogger("repro.server.slowquery")

#: ConfidenceRequest option names accepted in ``confidence_batch`` frames.
_BATCH_OPTIONS = ("epsilon", "delta", "seed", "max_calls", "time_limit", "hybrid_scale")

#: Operations that pass admission control (they occupy a pool member and
#: burn CPU).  ``ping`` / ``health`` / ``stats`` bypass it by design: a
#: saturated or draining server must stay observable.
_ADMITTED_OPS = frozenset(
    {
        "confidence",
        "confidence_many",
        "confidence_batch",
        "what_if",
        "execute",
        "execute_script",
    }
)

#: Default drain grace of :meth:`ConfidenceServer.stop`, in seconds.
DEFAULT_GRACE = 5.0


class _AdmissionQueue:
    """Bounded admission with load shedding and a service-time estimate.

    At most ``max_inflight`` admissions run concurrently; at most
    ``max_queue`` callers wait for a slot.  A caller beyond both bounds is
    shed immediately — an :class:`~repro.errors.OverloadedError` carrying
    ``retry_after_ms``, an EWMA-based estimate of when a slot frees up
    (mean service time × backlog ÷ parallelism, clamped to [50 ms, 5 s]).
    Shedding at the door instead of queueing unboundedly keeps latency
    honest: a client is told *now* to come back later rather than timing
    out at the end of a hopeless queue.
    """

    #: EWMA smoothing factor for the per-request service time.
    _ALPHA = 0.2

    def __init__(self, max_inflight: int, max_queue: int) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be at least 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be non-negative, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._slots = asyncio.Semaphore(max_inflight)
        self._waiting = 0
        self._ewma_seconds = 0.05  # optimistic prior; converges per request
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def waiting(self) -> int:
        """Callers currently queued for an admission slot."""
        return self._waiting

    def retry_after_ms(self) -> int:
        """When a shed client should plausibly retry, in milliseconds."""
        backlog = self._waiting + 1
        estimate = 1000.0 * self._ewma_seconds * backlog / self.max_inflight
        return int(min(5000.0, max(50.0, estimate)))

    def shed(self, message: str) -> None:
        """Refuse a request with a typed, retryable ``overloaded`` error."""
        self.shed_total += 1
        logger.debug(
            "shed request (%d shed so far, %d waiting): %s",
            self.shed_total, self._waiting, message,
        )
        raise OverloadedError(message, retry_after_ms=self.retry_after_ms())

    @contextlib.asynccontextmanager
    async def admit(self, timeout: float | None = None):
        """Hold one admission slot; shed or time out instead of waiting forever.

        ``timeout`` bounds the queue wait (a request's remaining deadline);
        an expired wait raises :class:`~repro.errors.DeadlineExceededError`.
        The slot's service time feeds the EWMA either way — even a degraded
        answer is signal about how busy the server is.
        """
        if self._slots.locked() and self._waiting >= self.max_queue:
            self.shed(
                f"admission queue is full ({self._waiting} waiting, "
                f"{self.max_inflight} in flight)"
            )
        self._waiting += 1
        try:
            if timeout is None:
                await self._slots.acquire()
            else:
                try:
                    await asyncio.wait_for(self._slots.acquire(), timeout)
                except TimeoutError:
                    raise DeadlineExceededError(
                        f"deadline expired after waiting {timeout:.3f}s for "
                        f"admission",
                        deadline_ms=timeout * 1000.0,
                    ) from None
        finally:
            self._waiting -= 1
        self.admitted_total += 1
        started = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - started
            self._ewma_seconds += self._ALPHA * (elapsed - self._ewma_seconds)
            self._slots.release()


class _ReadWriteGate:
    """An asyncio readers-writer gate for database-mutating requests.

    Confidence reads run shared; SQL containing an ``assert`` statement runs
    exclusive, so conditioning never swaps the world table and relations out
    from under a concurrent read (the two-assignment swap in
    ``ProbabilisticDatabase.assert_condition`` is not atomic).
    """

    def __init__(self) -> None:
        self._condition = asyncio.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    async def __aenter__(self) -> None:  # shared (read) side
        async with self._condition:
            # Writer preference: once a writer queues, new readers wait, so
            # sustained read traffic cannot starve conditioning forever.
            while self._writing or self._writers_waiting:
                await self._condition.wait()
            self._readers += 1

    async def __aexit__(self, *exc_info) -> None:
        async with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    @contextlib.asynccontextmanager
    async def exclusive(self):
        async with self._condition:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    await self._condition.wait()
                self._writing = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            async with self._condition:
                self._writing = False
                self._condition.notify_all()


class ConfidenceServer:
    """One shared probabilistic database behind a TCP wire protocol."""

    def __init__(
        self,
        database: "ProbabilisticDatabase",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_size: int = 4,
        config: "ExactConfig | None" = None,
        memo_limit: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        epsilon: float = 0.1,
        delta: float = 0.01,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_inflight: int | None = None,
        max_queue: int | None = None,
        metrics_port: int | None = None,
        slow_query_ms: float | None = None,
        shard_info: dict | None = None,
    ) -> None:
        self.database = database
        self._host = host
        self._port = port
        self._max_frame_bytes = max_frame_bytes
        self._metrics_port = metrics_port
        self._slow_query_ms = slow_query_ms
        #: Cluster membership, when this server serves one shard of a
        #: partitioned database: ``{"index": int, "shards": int, "map": dict}``
        #: with ``map`` a :class:`~repro.cluster.partition.ShardMap` payload.
        #: ``None`` on a stand-alone server — ``shard_map`` then answers
        #: ``{"sharded": false}``.
        self._shard_info = shard_info
        #: Server-side instruments (per-op latency histograms, request and
        #: error counters, pressure gauges).  The ``metrics`` op and the HTTP
        #: exposition endpoint merge this with the engine handle's registry.
        self.metrics = MetricsRegistry()
        options = {"epsilon": epsilon, "delta": delta, "workers": workers}
        if executor is not None:
            # "process" is the scale-out mode: cold exact computations from
            # every connection fan out across a shared process pool while the
            # memo and the interned space stay in this (parent) process.
            options["executor"] = executor
        if memo_limit is not None:
            options["memo_limit"] = memo_limit
        self._pool = SessionPool(database, config, size=pool_size, **options)
        self._gate = _ReadWriteGate()
        # Admission defaults follow the pool: more in-flight computations
        # than pool members would only queue inside the members' worker
        # threads, invisible to shedding and deadlines.
        self._admission = _AdmissionQueue(
            max_inflight if max_inflight is not None else pool_size,
            max_queue if max_queue is not None else 4 * pool_size,
        )
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._started = time.monotonic()
        self._connections_total = 0
        self._requests_total = 0
        self._errors_total = 0
        self._deadline_exceeded_total = 0
        self._draining = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``.

        With a process executor the worker pool is warmed up first (in a
        thread, so the loop stays responsive), sparing the first client the
        process-spawn latency.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        await asyncio.to_thread(self._pool.session.handle.warm_up)
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        if self._metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._serve_metrics_http, self._host, self._metrics_port
            )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real port)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The HTTP exposition endpoint's ``(host, port)``, if enabled."""
        if self._metrics_server is None:
            return None
        sock = self._metrics_server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def pool(self) -> SessionPool:
        """The shared session pool (exposed for bootstrap scripts and tests)."""
        return self._pool

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI wraps this with signal handling)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self, *, grace: float = DEFAULT_GRACE) -> None:
        """Drain, then stop: in-flight requests get ``grace`` seconds to answer.

        The listener closes immediately and newly arriving computation
        frames on existing connections are shed as ``overloaded``; requests
        already being answered keep running and their responses are written
        before their connections close.  Past the grace period (or with
        ``grace=0``) remaining connections are force-closed.  An idle server
        stops immediately — the drain wait only happens when something is
        actually in flight.

        Never blocks on client computations beyond the grace: the pool is
        closed without joining its worker threads, so a still-running
        unbounded exact computation cannot hold up shutdown — its connection
        is gone and its thread finishes in the background (interpreter exit
        still joins it; give server-facing requests budgets or deadlines to
        bound that tail).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if grace > 0 and self._inflight:
            with contextlib.suppress(TimeoutError):
                await asyncio.wait_for(self._idle.wait(), grace)
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # already torn down
                pass
        self._writers.clear()
        self._pool.close(wait=False)

    async def bootstrap(self, sql: str) -> None:
        """Run a ``;``-separated SQL script through the shared session.

        Used by the CLI's ``--load`` flag *before* :meth:`start`, so no
        client can observe the pre-bootstrap database: conditioning asserts
        shape the database, ``conf()`` queries pre-warm the memo cache.
        """
        member = self._pool.acquire()
        async with self._gate.exclusive():
            await member.execute_script(sql)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections_total += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame = await protocol.read_frame(
                        reader, max_frame_bytes=self._max_frame_bytes
                    )
                except ProtocolError as error:
                    if error.code == "connection-closed":
                        break  # truncated stream: nothing sensible to answer
                    # Oversized payloads were drained and malformed bodies
                    # consumed whole; the stream is still synchronised, so
                    # answer with an error frame and carry on.
                    await self._send_error(writer, None, error.code, str(error))
                    continue
                if frame is None:
                    break  # clean EOF
                # The response write is inside the in-flight window: a
                # draining stop() waits until the answer is on the wire,
                # not merely computed.
                self._inflight += 1
                self._idle.clear()
                try:
                    response = await self._respond(frame)
                    try:
                        await protocol.write_frame(
                            writer, response, max_frame_bytes=self._max_frame_bytes
                        )
                    except ProtocolError as error:
                        # The *response* outgrew the frame bound (e.g. a huge
                        # SQL answer): replace it with a small error frame
                        # instead of dropping the connection.
                        await self._send_error(
                            writer, response.get("id"), error.code, str(error)
                        )
                finally:
                    self._inflight -= 1
                    if not self._inflight:
                        self._idle.set()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_error(
        self, writer: asyncio.StreamWriter, id: object, code: str, message: str
    ) -> None:
        self._errors_total += 1
        await protocol.write_frame(
            writer, error_frame(id, code, message),
            max_frame_bytes=self._max_frame_bytes,
        )

    async def _respond(self, frame: dict) -> dict:
        """Map one request frame onto one response frame (never raises).

        Responses echo the request's protocol version, so a v1 client keeps
        seeing v1 frames.  Operations newer than the request's version are
        answered with ``unknown-op`` — exactly what a server of that version
        would have said.
        """
        id = frame.get("id")
        if not (id is None or isinstance(id, (int, str))):
            id = None
        version = frame.get("v")
        if version not in SUPPORTED_VERSIONS:
            self._errors_total += 1
            supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
            return error_frame(
                id,
                "unsupported-version",
                f"this server speaks protocol versions {supported}, "
                f"got {version!r}",
            )
        op = frame.get("op")
        if op not in protocol.OPS or OPS_SINCE_VERSION.get(op, 1) > version:
            self._errors_total += 1
            known = ", ".join(
                name
                for name in protocol.OPS
                if OPS_SINCE_VERSION.get(name, 1) <= version
            )
            return error_frame(
                id,
                "unknown-op",
                f"unknown operation {op!r} in protocol version {version}; "
                f"known: {known}",
                version=version,
            )
        args = frame.get("args") or {}
        if not isinstance(args, dict):
            self._errors_total += 1
            return error_frame(
                id, "malformed-frame", "args must be an object", version=version
            )
        deadline_ms = frame.get("deadline_ms")
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms <= 0
        ):
            self._errors_total += 1
            return error_frame(
                id,
                "malformed-frame",
                f"deadline_ms must be a positive number of milliseconds, "
                f"got {deadline_ms!r}",
                version=version,
            )
        deadline = (
            time.monotonic() + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        self._requests_total += 1
        started = time.monotonic()
        code: str | None = None
        try:
            result = await self._dispatch(op, args, deadline)
        except ReproError as error:
            self._errors_total += 1
            if isinstance(error, DeadlineExceededError):
                self._deadline_exceeded_total += 1
            code = protocol.error_code(error)
            return error_frame(
                id, code, str(error),
                protocol.error_detail(error), version=version,
            )
        except (KeyError, TypeError, ValueError) as error:
            self._errors_total += 1
            code = "malformed-frame"
            return error_frame(
                id, code, f"bad arguments for {op}: {error}",
                version=version,
            )
        except Exception as error:  # noqa: BLE001 - a request must never kill the server
            logger.exception("internal error answering %s", op)
            self._errors_total += 1
            code = "internal"
            return error_frame(
                id, "internal", f"{type(error).__name__}: {error}", version=version
            )
        finally:
            elapsed = time.monotonic() - started
            self.metrics.histogram("repro_server_op_seconds", op=op).record(elapsed)
            self.metrics.counter("repro_server_requests_total", op=op).inc()
            if code is not None:
                self.metrics.counter("repro_server_errors_total", code=code).inc()
        return ok_frame(id, result, version=version)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _dispatch(
        self, op: str, args: dict, deadline: float | None = None
    ) -> object:
        """Route one request, through admission control for computation ops.

        ``deadline`` is the request's absolute answer-by time
        (``time.monotonic()`` clock) or ``None``.  It bounds the admission
        wait; whatever remains after admission is folded into the session
        request (see :meth:`_admitted`).
        """
        if op == "ping":
            return {"pong": True, "protocol": PROTOCOL_VERSION}
        if op == "health":
            return self._health()
        if op == "metrics":
            # Lock-free like ``health``: metrics must stay scrapeable while
            # the gate is held exclusively or the admission queue is full.
            return self._metrics_payload()
        if op == "shard_map":
            # Lock-free: the shard map is immutable for the server's lifetime
            # and a cluster coordinator bootstraps from it before any
            # computation is admitted.
            if self._shard_info is None:
                return {"sharded": False}
            return {
                "sharded": True,
                "shard": self._shard_info["index"],
                "shards": self._shard_info["shards"],
                "map": self._shard_info["map"],
            }
        if op == "stats":
            # Shared gate: the database fields of the snapshot must not read
            # a half-swapped database during an exclusive assert.
            async with self._gate:
                return self._stats()
        assert op in _ADMITTED_OPS, f"unreachable op {op!r}"
        if self._draining:
            self._admission.shed("server is draining; no new work is admitted")
        timeout = None
        if deadline is not None:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise DeadlineExceededError(
                    "deadline already expired on arrival", deadline_ms=0.0
                )
        async with self._admission.admit(timeout):
            return await self._admitted(op, args, deadline)

    async def _admitted(self, op: str, args: dict, deadline: float | None) -> object:
        """Answer an admitted computation op, deadline folded into the request.

        ``confidence`` / ``confidence_many`` requests carry the *remaining*
        milliseconds as :attr:`~repro.db.session.ConfidenceRequest.deadline_ms`
        (tightening any client-set value), so an overrunning exact
        computation degrades to a Karp-Luby answer inside the deadline
        instead of erroring.  For ``confidence_batch``, ``what_if`` and SQL
        execution the deadline bounds the admission wait only — their
        computations have no mid-flight degradation path.

        The ``server.dispatch`` fault point sits at the top, *inside* the
        admission slot: a ``delay`` fault holds the request open — in flight
        for drain purposes, occupying capacity for shedding tests — without
        burning CPU.
        """
        if _faults.INJECTOR.armed:
            fault = _faults.INJECTOR.take("server.dispatch")
            if fault is not None and fault.seconds > 0.0:
                await asyncio.sleep(fault.seconds)
        remaining_ms = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    "deadline expired in the admission queue", deadline_ms=0.0
                )
            remaining_ms = remaining * 1000.0
        if op == "confidence":
            request = self._fold_deadline(
                ConfidenceRequest.from_payload(args), remaining_ms
            )
            # With a slow-query threshold armed, trace server-side even when
            # the client did not ask: a slow query's log line should carry
            # its span tree, and by the time we know it was slow it is too
            # late to trace it.  The forced trace is stripped again below.
            forced_trace = self._slow_query_ms is not None and not request.trace
            if forced_trace:
                request = replace(request, trace=True)
            started = time.monotonic()
            async with self._gate:
                result = await self._pool.acquire().query(request)
            payload = result.to_payload()
            self._log_slow_query(op, started, payload)
            if forced_trace:
                payload.pop("trace", None)
            return payload
        if op == "confidence_many":
            requests = [
                self._fold_deadline(request, remaining_ms)
                for request in self._many_requests(args)
            ]
            async with self._gate:
                results = await self._confidence_many(requests)
            return {"results": [result.to_payload() for result in results]}
        if op == "confidence_batch":
            async with self._gate:
                return await self._confidence_batch(args)
        if op == "what_if":
            async with self._gate:
                return await self._what_if(args)
        if op == "execute":
            sql = self._sql_of(args)
            async with self._exclusion_for(sql):
                result = await self._pool.acquire().execute(sql)
            return protocol.query_result_to_payload(result)
        if op == "execute_script":
            sql = self._sql_of(args)
            async with self._exclusion_for(sql):
                results = await self._pool.acquire().execute_script(sql)
            return [protocol.query_result_to_payload(result) for result in results]
        raise AssertionError(f"unreachable op {op!r}")  # pragma: no cover

    @staticmethod
    def _fold_deadline(
        request: ConfidenceRequest, remaining_ms: float | None
    ) -> ConfidenceRequest:
        """Tighten a request's ``deadline_ms`` to the frame's remaining time."""
        if remaining_ms is None:
            return request
        if request.deadline_ms is not None and request.deadline_ms <= remaining_ms:
            return request
        return replace(request, deadline_ms=remaining_ms)

    def _health(self) -> dict:
        """The ``health`` payload: liveness plus admission pressure, lock-free.

        Deliberately reads no database state and takes no gate — health
        checks must answer even while an exclusive ``assert`` or a saturated
        admission queue would stall a ``stats`` frame.
        """
        payload = {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "inflight": self._inflight,
            "queued": self._admission.waiting,
            "max_inflight": self._admission.max_inflight,
            "max_queue": self._admission.max_queue,
            "uptime_seconds": time.monotonic() - self._started,
        }
        if self._shard_info is not None:
            payload["shard"] = {
                "index": self._shard_info["index"],
                "shards": self._shard_info["shards"],
            }
        return payload

    def _log_slow_query(self, op: str, started: float, payload: dict) -> None:
        """Emit one structured JSON line when a request overran the threshold.

        The line carries the request's span tree (``payload["trace"]``, forced
        server-side when a threshold is armed), so a slow query is diagnosable
        from the log alone: which phase — decompose, dispatch, worker
        components, merge — ate the time.
        """
        if self._slow_query_ms is None:
            return
        elapsed_ms = (time.monotonic() - started) * 1000.0
        if elapsed_ms < self._slow_query_ms:
            return
        record = {
            "event": "slow_query",
            "op": op,
            "ms": round(elapsed_ms, 3),
            "threshold_ms": self._slow_query_ms,
            "method": payload.get("method"),
            "trace": payload.get("trace"),
        }
        slow_query_logger.warning(json.dumps(record, sort_keys=True))

    def _metrics_payload(self) -> dict:
        """The ``metrics`` payload: one merged registry snapshot, lock-free.

        Point-in-time pressure (queue depth, in-flight, open connections,
        draining) is refreshed into gauges and the admission counters are
        mirrored into the registry at read time, then the server registry is
        merged with the shared engine handle's registry — which already
        contains the histograms merged back from process-pool workers.
        """
        registry = self.metrics
        registry.gauge("repro_server_queue_depth").set(self._admission.waiting)
        registry.gauge("repro_server_inflight").set(self._inflight)
        registry.gauge("repro_server_connections_open").set(len(self._writers))
        registry.gauge("repro_server_draining").set(1.0 if self._draining else 0.0)
        registry.counter("repro_server_shed_total").set(self._admission.shed_total)
        registry.counter("repro_server_admitted_total").set(
            self._admission.admitted_total
        )
        registry.counter("repro_server_deadline_exceeded_total").set(
            self._deadline_exceeded_total
        )
        registry.counter("repro_server_connections_total").set(
            self._connections_total
        )
        snapshot = merge_snapshots(
            registry.snapshot(), self._pool.session.handle.metrics.snapshot()
        )
        return {"metrics": snapshot}

    async def _serve_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP/1.1 scrape on the ``--metrics-port`` listener.

        Hand-rolled on purpose — no HTTP dependency for a one-path,
        one-response-per-connection text endpoint.  ``GET /metrics`` answers
        Prometheus text exposition format; everything else is a 404.
        """
        try:
            request_line = await reader.readline()
            while True:  # drain headers; one request per connection
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1].partition("?")[0] if len(parts) >= 2 else ""
            if path in ("/metrics", "/"):
                body = render_prometheus(self._metrics_payload()["metrics"])
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = "not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            encoded = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(encoded)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("ascii")
                + encoded
            )
            await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    def _exclusion_for(self, sql: str):
        """The gate mode for a SQL request: exclusive iff it conditions.

        ``assert`` swaps the database's world table and relations (two
        non-atomic assignments); running it exclusively means no concurrent
        read can observe a half-swapped database.  Plain selects share the
        gate like confidence queries.
        """
        return self._gate.exclusive() if _mutates(sql) else self._gate

    @staticmethod
    def _many_requests(args: dict) -> list[ConfidenceRequest]:
        """Decode and validate the request list of a ``confidence_many`` frame."""
        unknown = set(args) - {"requests"}
        if unknown:
            raise QueryError(f"unknown confidence_many options {sorted(unknown)}")
        payloads = args.get("requests")
        if not isinstance(payloads, list):
            raise QueryError(
                f"confidence_many needs a list of requests, got {payloads!r}"
            )
        return [ConfidenceRequest.from_payload(payload) for payload in payloads]

    async def _confidence_many(
        self, requests: list[ConfidenceRequest]
    ) -> list["ConfidenceResult"]:
        """Answer a batch by fanning it out across the session pool.

        Each request goes to its own pool member, so the batch pipelines up
        to ``pool_size`` requests; with ``executor="process"`` the engine
        handle releases its lock during worker computation, making the
        fan-out genuinely parallel across cores.  Results keep request
        order, and the whole batch shares the one gate acquisition of its
        frame.  A failing request fails the batch with its typed error —
        batches are all-or-nothing, like every other frame.  The error is
        only sent once *every* request of the batch has finished (the first
        failure in request order wins): answering early would leave the
        still-running requests occupying pool members invisibly, stalling
        the client's own retries behind zombie computations.
        """
        members = [self._pool.acquire() for _ in requests]
        results = await asyncio.gather(
            *(member.query(request) for member, request in zip(members, requests)),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    async def _confidence_batch(self, args: dict) -> dict:
        relation = args.get("relation")
        if not isinstance(relation, str):
            raise QueryError(
                f"confidence_batch needs a relation name, got {relation!r}"
            )
        unknown = set(args) - {"relation", "method", *_BATCH_OPTIONS}
        if unknown:
            # A misspelled option (say max_call) must error like the local
            # API would, not silently run without the budget it asked for.
            raise QueryError(f"unknown confidence_batch options {sorted(unknown)}")
        options = {
            name: args[name]
            for name in _BATCH_OPTIONS
            if args.get(name) is not None
        }
        rows = await self._pool.acquire().confidence_batch(
            relation, args.get("method", "exact"), **options
        )
        return {
            "rows": [
                {"values": list(row.values), "confidence": row.confidence}
                for row in rows
            ]
        }

    async def _what_if(self, args: dict) -> dict:
        """Answer a ``what_if`` frame: one compiled sweep, many points.

        The target ws-set compiles once into a lineage circuit (cached on
        the shared engine handle, so repeated sweeps over the same lineage
        skip even the compile) and every probability point is a circuit
        re-evaluation — no re-decomposition, no per-point frames.
        """
        unknown = set(args) - {"target", "variable", "value", "ps"}
        if unknown:
            raise QueryError(f"unknown what_if options {sorted(unknown)}")
        if "target" not in args:
            raise QueryError("what_if needs a target")
        if "variable" not in args:
            raise QueryError("what_if needs a variable")
        ps = args.get("ps")
        if (
            not isinstance(ps, list)
            or not ps
            or any(isinstance(p, bool) or not isinstance(p, (int, float)) for p in ps)
        ):
            raise QueryError(
                f"what_if needs a non-empty list of probability points, got {ps!r}"
            )
        target = target_from_payload(args["target"])
        member = self._pool.acquire()
        values = await member.what_if(
            target, args["variable"], ps, value=args.get("value")
        )
        return {"values": values, "points": len(values)}

    def _stats(self) -> dict:
        return {
            "engine": self._pool.statistics().as_dict(),
            "server": {
                "protocol": PROTOCOL_VERSION,
                "pool_size": self._pool.size,
                "connections_total": self._connections_total,
                "connections_open": len(self._writers),
                "requests_total": self._requests_total,
                "errors_total": self._errors_total,
                "uptime_seconds": time.monotonic() - self._started,
                "relations": list(self.database.relation_names),
                "variables": len(self.database.world_table),
                "draining": self._draining,
                "inflight": self._inflight,
                "queued": self._admission.waiting,
                "max_inflight": self._admission.max_inflight,
                "max_queue": self._admission.max_queue,
                "admitted_total": self._admission.admitted_total,
                "shed_total": self._admission.shed_total,
                "deadline_exceeded_total": self._deadline_exceeded_total,
            },
        }

    @staticmethod
    def _sql_of(args: dict) -> str:
        sql = args.get("sql")
        if not isinstance(sql, str):
            raise QueryError(f"execute needs a SQL string, got {sql!r}")
        return sql

    def __repr__(self) -> str:
        state = "stopped" if self._server is None else "%s:%s" % self.address
        return f"ConfidenceServer({state}, pool={self._pool.size})"


def _mutates(sql: str) -> bool:
    """True iff any statement of the (possibly ``;``-separated) SQL conditions."""
    from repro.sql.executor import split_statements

    return any(
        statement.lstrip().lower().startswith("assert")
        for statement in split_statements(sql)
    )
