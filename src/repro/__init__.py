"""repro — a reproduction of "Conditioning Probabilistic Databases" (Koch & Olteanu, VLDB 2008).

The library implements U-relational probabilistic databases, exact confidence
computation via world-set tree (ws-tree) decompositions, the database
conditioning operation ``assert[B]``, and the approximation baselines the
paper compares against, together with the workload generators and benchmark
harness that regenerate every table and figure of the paper's experimental
section.

Quickstart
----------
>>> from repro import ProbabilisticDatabase, FunctionalDependency
>>> db = ProbabilisticDatabase()
>>> db.world_table.add_variable("j", {1: 0.2, 7: 0.8})   # John's SSN
>>> db.world_table.add_variable("b", {4: 0.3, 7: 0.7})   # Bill's SSN
>>> r = db.create_relation("R", ("SSN", "NAME"))
>>> r.add({"j": 1}, (1, "John")); r.add({"j": 7}, (7, "John"))
>>> r.add({"b": 4}, (4, "Bill")); r.add({"b": 7}, (7, "Bill"))
>>> summary = db.assert_condition(FunctionalDependency("R", ["SSN"], ["NAME"]))
>>> round(summary.confidence, 2)        # P(SSN -> NAME) in the prior
0.44
"""

from repro.core.descriptors import WSDescriptor, EMPTY_DESCRIPTOR
from repro.core.wsset import WSSet
from repro.core.wstree import (
    WSTree,
    IndependentNode,
    VariableNode,
    LeafNode,
    BottomNode,
)
from repro.core.decompose import compute_tree, DecompositionStats
from repro.core.heuristics import make_heuristic, available_heuristics
from repro.core.probability import (
    ExactConfig,
    probability,
    probability_with_stats,
    confidence,
)
from repro.core.engine import EngineHandle, EngineStats
from repro.core.elimination import descriptor_elimination_probability, mutex_normal_form
from repro.core.conditioning import (
    condition_wsset,
    ConditioningResult,
    posterior_probability,
)
from repro.core.bruteforce import brute_force_probability

from repro.approx import (
    karp_luby_confidence,
    naive_monte_carlo_confidence,
    KarpLubyEstimator,
)

from repro.db.world_table import WorldTable
from repro.db.urelation import URelation, UTuple
from repro.db.database import ProbabilisticDatabase, ConditioningSummary
from repro.db.predicates import attr, col
from repro.db.constraints import (
    Constraint,
    FunctionalDependency,
    KeyConstraint,
    EqualityGeneratingDependency,
    DenialConstraint,
)
from repro.db.confidence import (
    confidence_by_tuple,
    confidence_of_relation,
    certain_tuples,
    possible_tuples,
)
from repro.db.session import (
    Session,
    AsyncSession,
    SessionPool,
    ConfidenceRequest,
    ConfidenceResult,
    adaptive_hybrid_budget,
)
from repro.db.tuple_independent import tuple_independent_relation
from repro.db.api import ConfidenceAPI, connect

from repro.errors import (
    ReproError,
    ZeroProbabilityConditionError,
    InvalidDistributionError,
    UnknownVariableError,
    PartitionError,
    ShardUnavailableError,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "WSDescriptor",
    "EMPTY_DESCRIPTOR",
    "WSSet",
    "WSTree",
    "IndependentNode",
    "VariableNode",
    "LeafNode",
    "BottomNode",
    "compute_tree",
    "DecompositionStats",
    "make_heuristic",
    "available_heuristics",
    "ExactConfig",
    "EngineHandle",
    "EngineStats",
    "probability",
    "probability_with_stats",
    "confidence",
    "descriptor_elimination_probability",
    "mutex_normal_form",
    "condition_wsset",
    "ConditioningResult",
    "posterior_probability",
    "brute_force_probability",
    # approximation
    "karp_luby_confidence",
    "naive_monte_carlo_confidence",
    "KarpLubyEstimator",
    # database layer
    "WorldTable",
    "URelation",
    "UTuple",
    "ProbabilisticDatabase",
    "ConditioningSummary",
    "attr",
    "col",
    "Constraint",
    "FunctionalDependency",
    "KeyConstraint",
    "EqualityGeneratingDependency",
    "DenialConstraint",
    "confidence_by_tuple",
    "confidence_of_relation",
    "certain_tuples",
    "possible_tuples",
    "Session",
    "AsyncSession",
    "SessionPool",
    "ConfidenceRequest",
    "ConfidenceResult",
    "adaptive_hybrid_budget",
    "tuple_independent_relation",
    # unified client API (local / single server / sharded cluster)
    "ConfidenceAPI",
    "connect",
    # errors
    "ReproError",
    "ZeroProbabilityConditionError",
    "InvalidDistributionError",
    "UnknownVariableError",
    "PartitionError",
    "ShardUnavailableError",
    "__version__",
]
