"""Exact probability via ws-descriptor elimination (paper, Section 6, "WE").

The method repeatedly eliminates one descriptor ``d1`` from the ws-set ``S``:

    Pw(∅)   = 0
    Pw({∅}) = 1
    Pw(S)   = Pw(S \\ {d1}) + Σ_{d ∈ ({d1} − (S \\ {d1}))} P(d)

The ws-set difference preserves the mutex property (Lemma 6.2), so the
probabilities of the difference descriptors can simply be summed.  Unrolling
the recursion gives Corollary 6.4: any ws-set ``{d1, ..., dn}`` is equivalent
to the pairwise-mutex ws-set
``⋃_{i<n} ({d_i} − {d_{i+1}, ..., d_n}) ∪ {d_n}``.

As the paper notes, the difference descriptors can be generated and summed
on the fly without materialising the (potentially exponential) mutex ws-set;
:func:`descriptor_elimination_probability` does exactly that.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.decompose import Budget, recursion_guard
from repro.core.descriptors import WSDescriptor
from repro.core.wsset import WSSet, _difference_pair

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import WorldTable

#: Supported descriptor-elimination orders (an ablation knob; the paper
#: eliminates descriptors in the order given).
ELIMINATION_ORDERS = ("given", "shortest-first", "longest-first", "most-probable-first")


@dataclass
class EliminationResult:
    """Probability plus counters describing a descriptor-elimination run."""

    probability: float
    generated_descriptors: int
    eliminated_descriptors: int


def descriptor_elimination_probability(
    ws_set: WSSet,
    world_table: "WorldTable",
    *,
    order: str = "given",
    max_calls: int | None = None,
    time_limit: float | None = None,
) -> float:
    """Exact probability of ``ws_set`` using the WE method of Section 6."""
    return descriptor_elimination_with_stats(
        ws_set,
        world_table,
        order=order,
        max_calls=max_calls,
        time_limit=time_limit,
    ).probability


def descriptor_elimination_with_stats(
    ws_set: WSSet,
    world_table: "WorldTable",
    *,
    order: str = "given",
    max_calls: int | None = None,
    time_limit: float | None = None,
) -> EliminationResult:
    """Like :func:`descriptor_elimination_probability` but with run statistics."""
    if ws_set.is_empty:
        return EliminationResult(0.0, 0, 0)
    if ws_set.contains_universal:
        return EliminationResult(1.0, 0, 0)

    descriptors = _ordered(ws_set, world_table, order)
    budget = Budget(max_calls, time_limit)
    total = 0.0
    generated = 0
    # Unrolled recursion of Pw: each descriptor contributes the probability of
    # the worlds it covers that no *later* descriptor covers.
    with recursion_guard():
        for index, descriptor in enumerate(descriptors):
            later = descriptors[index + 1:]
            for mutex_descriptor in _stream_difference(
                descriptor, later, world_table, budget
            ):
                generated += 1
                total += mutex_descriptor.probability(world_table)
    return EliminationResult(total, generated, len(descriptors))


def mutex_normal_form(ws_set: WSSet, world_table: "WorldTable") -> WSSet:
    """The equivalent pairwise-mutex ws-set of Corollary 6.4 (materialised).

    Useful for inspection and tests; beware that it can be exponentially
    larger than the input.
    """
    descriptors = list(ws_set.descriptors)
    result: list[WSDescriptor] = []
    budget = Budget()
    with recursion_guard():
        for index, descriptor in enumerate(descriptors):
            later = descriptors[index + 1:]
            result.extend(_stream_difference(descriptor, later, world_table, budget))
    return WSSet(result)


def _ordered(
    ws_set: WSSet, world_table: "WorldTable", order: str
) -> list[WSDescriptor]:
    descriptors = list(ws_set.descriptors)
    if order == "given":
        return descriptors
    if order == "shortest-first":
        return sorted(descriptors, key=len)
    if order == "longest-first":
        return sorted(descriptors, key=len, reverse=True)
    if order == "most-probable-first":
        return sorted(
            descriptors, key=lambda d: d.probability(world_table), reverse=True
        )
    known = ", ".join(ELIMINATION_ORDERS)
    raise ValueError(f"unknown elimination order {order!r}; known orders: {known}")


def _stream_difference(
    descriptor: WSDescriptor,
    removed: list[WSDescriptor],
    world_table: "WorldTable",
    budget: Budget,
) -> Iterator[WSDescriptor]:
    """Yield the descriptors of ``{descriptor} − removed`` without storing them all.

    The pairwise difference rule is applied lazily, descriptor by descriptor,
    following the inductive definition ``Diff({d1}, S ∪ {d2}) =
    Diff(Diff({d1}, S), {d2})`` of Section 3.2.
    """
    budget.tick()
    if not removed:
        yield descriptor
        return
    head, tail = removed[0], removed[1:]
    for piece in _difference_pair(descriptor, head, world_table):
        yield from _stream_difference(piece, tail, world_table, budget)
