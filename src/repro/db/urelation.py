"""U-relations: relations whose tuples carry world-set descriptors (paper, Section 2).

A U-relation over a schema ``Σ`` and a world table ``W`` is a set of tuples
over ``Σ``, each associated with a ws-descriptor over ``W``.  A tuple belongs
to the relation in exactly those possible worlds whose total valuation extends
its descriptor.  U-relations are a complete representation system for
probabilistic databases over nonempty finite sets of possible worlds
(Remark 2.2), and positive relational algebra operations translate into plain
relational operations on them (see :mod:`repro.db.algebra`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.descriptors import EMPTY_DESCRIPTOR, WSDescriptor, as_descriptor
from repro.core.wsset import WSSet
from repro.errors import SchemaError, UnknownAttributeError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import Value, Variable
else:
    Variable = object
    Value = object


@dataclass(frozen=True)
class UTuple:
    """One row of a U-relation: a ws-descriptor plus the attribute values."""

    descriptor: WSDescriptor
    values: tuple

    def with_descriptor(self, descriptor: WSDescriptor) -> "UTuple":
        """A copy of this row with a different ws-descriptor."""
        return UTuple(descriptor, self.values)

    def project(self, indexes: Sequence[int]) -> "UTuple":
        """A copy keeping only the values at the given positions."""
        return UTuple(self.descriptor, tuple(self.values[i] for i in indexes))


class URelation:
    """A named U-relation: a schema plus rows carrying ws-descriptors.

    Examples
    --------
    >>> r = URelation("R", ("SSN", "NAME"))
    >>> r.add({"j": 1}, (1, "John"))
    >>> r.add({"j": 7}, (7, "John"))
    >>> len(r)
    2
    >>> r.attributes
    ('SSN', 'NAME')
    """

    __slots__ = ("name", "_attributes", "_index", "_rows")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[UTuple] | None = None,
    ) -> None:
        if len(set(attributes)) != len(tuple(attributes)):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        self.name = name
        self._attributes: tuple[str, ...] = tuple(attributes)
        self._index: dict[str, int] = {a: i for i, a in enumerate(self._attributes)}
        self._rows: list[UTuple] = []
        if rows is not None:
            for row in rows:
                self.add_tuple(row)

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """The schema of this relation (WSD column excluded)."""
        return self._attributes

    def attribute_index(self, attribute: str) -> int:
        """The position of ``attribute`` in the schema."""
        try:
            return self._index[attribute]
        except KeyError:
            raise UnknownAttributeError(attribute, self._attributes) from None

    def has_attribute(self, attribute: str) -> bool:
        """True iff ``attribute`` belongs to the schema."""
        return attribute in self._index

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def add(
        self,
        descriptor: "WSDescriptor | Mapping[Variable, Value]",
        values: Sequence,
    ) -> None:
        """Append a row given its descriptor and values (in schema order)."""
        self.add_tuple(UTuple(as_descriptor(descriptor), tuple(values)))

    def add_certain(self, values: Sequence) -> None:
        """Append a row present in every world (nullary descriptor)."""
        self.add_tuple(UTuple(EMPTY_DESCRIPTOR, tuple(values)))

    def add_from_dict(
        self,
        descriptor: "WSDescriptor | Mapping[Variable, Value]",
        values: Mapping[str, object],
    ) -> None:
        """Append a row given a ``attribute -> value`` mapping."""
        ordered = tuple(values[attribute] for attribute in self._attributes)
        self.add_tuple(UTuple(as_descriptor(descriptor), ordered))

    def add_tuple(self, row: UTuple) -> None:
        """Append an existing :class:`UTuple` (its arity must match the schema)."""
        if len(row.values) != len(self._attributes):
            raise SchemaError(
                f"row arity {len(row.values)} does not match schema arity "
                f"{len(self._attributes)} of relation {self.name!r}"
            )
        self._rows.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[UTuple]:
        return iter(self._rows)

    @property
    def rows(self) -> tuple[UTuple, ...]:
        """All rows of the relation, in insertion order."""
        return tuple(self._rows)

    def value(self, row: UTuple, attribute: str) -> object:
        """The value of ``attribute`` in ``row``."""
        return row.values[self.attribute_index(attribute)]

    def row_as_dict(self, row: UTuple) -> dict[str, object]:
        """``attribute -> value`` mapping for one row."""
        return dict(zip(self._attributes, row.values))

    def iter_dicts(self) -> Iterator[tuple[WSDescriptor, dict[str, object]]]:
        """Iterate over ``(descriptor, attribute -> value)`` pairs."""
        for row in self._rows:
            yield row.descriptor, dict(zip(self._attributes, row.values))

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    def descriptors(self) -> WSSet:
        """The ws-set of all row descriptors (the Boolean projection π∅)."""
        return WSSet(row.descriptor for row in self._rows)

    def descriptors_for_values(self, values: Sequence) -> WSSet:
        """The ws-set of descriptors of all rows equal to ``values``."""
        target = tuple(values)
        return WSSet(row.descriptor for row in self._rows if row.values == target)

    def variables(self) -> frozenset[Variable]:
        """All world-table variables referenced by some row descriptor."""
        result: set[Variable] = set()
        for row in self._rows:
            result.update(row.descriptor.variables)
        return frozenset(result)

    def distinct_values(self) -> list[tuple]:
        """The distinct value tuples appearing in the relation (any world)."""
        seen: dict[tuple, None] = {}
        for row in self._rows:
            seen.setdefault(row.values, None)
        return list(seen)

    def in_world(self, world: Mapping[Variable, Value]) -> list[tuple]:
        """The deterministic instance of this relation in the given world.

        A row is present iff the world's valuation extends the row's
        descriptor; duplicates (same values from different rows) collapse,
        matching set semantics.
        """
        present: dict[tuple, None] = {}
        for row in self._rows:
            if row.descriptor.is_satisfied_by(world):
                present.setdefault(row.values, None)
        return list(present)

    # ------------------------------------------------------------------
    # Copying / renaming
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "URelation":
        """A shallow copy (rows are immutable, so sharing them is safe)."""
        clone = URelation(name or self.name, self._attributes)
        clone._rows = list(self._rows)
        return clone

    def renamed_attributes(self, renaming: Mapping[str, str], name: str | None = None) -> "URelation":
        """A copy with attributes renamed according to ``renaming``."""
        new_attributes = tuple(renaming.get(a, a) for a in self._attributes)
        clone = URelation(name or self.name, new_attributes)
        clone._rows = list(self._rows)
        return clone

    def prefixed(self, prefix: str, name: str | None = None) -> "URelation":
        """A copy with every attribute renamed to ``prefix + attribute``.

        Used to disambiguate self-joins, mirroring the ``1.SSN`` / ``2.SSN``
        notation of Example 2.3.
        """
        return self.renamed_attributes(
            {a: f"{prefix}{a}" for a in self._attributes}, name=name
        )

    def map_descriptors(self, function) -> "URelation":
        """A copy with ``function`` applied to every row descriptor."""
        clone = URelation(self.name, self._attributes)
        clone._rows = [
            row.with_descriptor(function(row.descriptor)) for row in self._rows
        ]
        return clone

    def __repr__(self) -> str:
        return f"URelation({self.name!r}, {self._attributes!r}, {len(self._rows)} rows)"

    def pretty(self, limit: int = 20) -> str:
        """A readable rendering mirroring the U-relation figures of the paper."""
        header = "WSD | " + " | ".join(self._attributes)
        lines = [f"U-relation {self.name}", header, "-" * len(header)]
        for row in self._rows[:limit]:
            values = " | ".join(str(v) for v in row.values)
            lines.append(f"{row.descriptor} | {values}")
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)
