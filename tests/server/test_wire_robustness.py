"""Wire-robustness fuzzing: hostile bytes must never take the server down.

Every test speaks raw sockets — truncated length prefixes, frames that
promise more bytes than arrive, declared lengths past the frame bound,
non-JSON bodies, seeded random garbage — and then proves the server is
still alive and *correct* by running a real confidence request on a fresh
connection.  The protocol's recovery contract: a frame whose bytes all
arrived (however rotten) gets an error frame on a still-synchronised
stream; a stream that dies mid-frame is dropped without ceremony.
"""

from __future__ import annotations

import random
import socket

import pytest

from repro.server import connect
from repro.server.protocol import HEADER, encode_frame, recv_frame, request_frame


def raw_connection(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=5)
    sock.settimeout(5)
    return sock


def assert_still_serving(server, expected_value: float) -> None:
    """The ultimate health check: a correct answer on a fresh connection."""
    with connect(server.host, server.port, timeout=5) as session:
        assert session.ping()["pong"] is True
        assert session.confidence("R").value == expected_value


@pytest.fixture
def serving(running_server, ssn_database):
    expected = ssn_database.session().confidence("R").value
    with running_server(ssn_database) as server:
        yield server, expected


class TestMalformedFrames:
    def test_truncated_length_prefix_then_disconnect(self, serving):
        server, expected = serving
        with raw_connection(server) as sock:
            sock.sendall(b"\x00\x00")  # half a header, then gone
        assert_still_serving(server, expected)

    def test_header_promises_more_bytes_than_arrive(self, serving):
        server, expected = serving
        with raw_connection(server) as sock:
            sock.sendall(HEADER.pack(1000) + b'{"op": "ping"')
        assert_still_serving(server, expected)

    def test_mid_frame_disconnect_of_a_valid_request(self, serving):
        server, expected = serving
        frame = encode_frame(request_frame("ping", id=1))
        with raw_connection(server) as sock:
            sock.sendall(frame[: len(frame) // 2])
        assert_still_serving(server, expected)

    def test_non_json_body_gets_an_error_frame_in_stream(self, serving):
        server, expected = serving
        body = b"\xff\xfe not json at all \x00"
        with raw_connection(server) as sock:
            sock.sendall(HEADER.pack(len(body)) + body)
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "malformed-frame"
            # The stream stayed synchronised: the same connection still works.
            sock.sendall(encode_frame(request_frame("ping", id=7)))
            assert recv_frame(sock)["result"]["pong"] is True
        assert_still_serving(server, expected)

    def test_json_body_that_is_not_an_object(self, serving):
        server, expected = serving
        body = b'[1, 2, 3]'
        with raw_connection(server) as sock:
            sock.sendall(HEADER.pack(len(body)) + body)
            response = recv_frame(sock)
            assert response["ok"] is False
        assert_still_serving(server, expected)


class TestOversizedFrames:
    def test_oversized_declared_length_is_drained_and_answered(
        self, running_server, ssn_database
    ):
        expected = ssn_database.session().confidence("R").value
        with running_server(ssn_database, max_frame_bytes=4096) as server:
            with raw_connection(server) as sock:
                sock.sendall(HEADER.pack(8192) + b"x" * 8192)
                response = recv_frame(sock)
                assert response["ok"] is False
                assert response["error"]["code"] == "frame-too-large"
                # Drained whole, so the stream survives the insult.
                sock.sendall(encode_frame(request_frame("ping", id=2)))
                assert recv_frame(sock)["result"]["pong"] is True
            assert_still_serving(server, expected)

    def test_oversized_length_with_disconnect_during_drain(
        self, running_server, ssn_database
    ):
        expected = ssn_database.session().confidence("R").value
        with running_server(ssn_database, max_frame_bytes=4096) as server:
            with raw_connection(server) as sock:
                sock.sendall(HEADER.pack(1 << 20) + b"x" * 100)
            assert_still_serving(server, expected)


class TestGarbageFuzzing:
    def test_seeded_random_garbage_never_kills_the_server(self, serving):
        server, expected = serving
        rng = random.Random(2008)
        for _ in range(12):
            blob = rng.randbytes(rng.randint(1, 512))
            with raw_connection(server) as sock:
                try:
                    sock.sendall(blob)
                    # Whatever the server makes of it — error frames, a
                    # drain, a shrug — it must not hang this socket forever.
                    sock.settimeout(0.5)
                    sock.recv(4096)
                except OSError:
                    pass  # resets and timeouts are acceptable outcomes
        assert_still_serving(server, expected)

    def test_bitflipped_valid_frames(self, serving):
        server, expected = serving
        rng = random.Random(11)
        pristine = encode_frame(request_frame("ping", id=3))
        for _ in range(12):
            corrupted = bytearray(pristine)
            for _ in range(rng.randint(1, 4)):
                index = rng.randrange(len(corrupted))
                corrupted[index] ^= 1 << rng.randrange(8)
            with raw_connection(server) as sock:
                try:
                    sock.sendall(bytes(corrupted))
                    sock.settimeout(0.5)
                    sock.recv(4096)
                except OSError:
                    pass
        assert_still_serving(server, expected)
