"""Unit tests for ws-sets and their set algebra (Section 3.2 of the paper)."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import brute_force_probability, enumerate_worlds
from repro.core.descriptors import EMPTY_DESCRIPTOR, WSDescriptor
from repro.core.wsset import WSSet, ws_difference, ws_intersect, ws_union
from repro.db.world_table import WorldTable


@pytest.fixture
def two_variable_table() -> WorldTable:
    w = WorldTable()
    w.add_variable("j", {1: 0.2, 7: 0.8})
    w.add_variable("b", {4: 0.3, 7: 0.7})
    return w


def worlds_of(ws_set: WSSet, world_table: WorldTable) -> set:
    """Ground-truth world-set of a ws-set by enumeration."""
    return {
        tuple(sorted(world.items()))
        for world, _ in enumerate_worlds(world_table)
        if ws_set.is_satisfied_by(world)
    }


class TestConstruction:
    def test_deduplication(self):
        s = WSSet([{"x": 1}, {"x": 1}, {"x": 2}])
        assert len(s) == 2

    def test_of_constructor(self):
        assert WSSet.of({"x": 1}, {"y": 2}) == WSSet([{"x": 1}, {"y": 2}])

    def test_empty_and_universal(self):
        assert WSSet.empty().is_empty
        assert WSSet.universal().contains_universal
        assert not WSSet.universal().is_empty

    def test_variables(self):
        s = WSSet([{"x": 1}, {"y": 2, "z": 3}])
        assert s.variables() == frozenset({"x", "y", "z"})

    def test_total_size(self):
        s = WSSet([{"x": 1}, {"y": 2, "z": 3}])
        assert s.total_size() == 3

    def test_membership(self):
        s = WSSet([{"x": 1}])
        assert WSDescriptor({"x": 1}) in s
        assert WSDescriptor({"x": 2}) not in s
        assert "not a descriptor" not in s

    def test_equality_is_order_insensitive(self):
        assert WSSet([{"x": 1}, {"y": 2}]) == WSSet([{"y": 2}, {"x": 1}])


class TestExample33:
    """Example 3.3: intersections and differences of the Example 3.1 descriptors."""

    def setup_method(self):
        self.w = WorldTable()
        self.w.add_variable("j", {1: 0.2, 7: 0.8})
        self.w.add_variable("b", {4: 0.3, 7: 0.7})
        self.d1 = WSSet([{"j": 1}])
        self.d2 = WSSet([{"j": 7}])
        self.d3 = WSSet([{"j": 1, "b": 4}])

    def test_intersections_of_mutex_sets_are_empty(self):
        assert self.d1.intersect(self.d2).is_empty
        assert self.d2.intersect(self.d3).is_empty

    def test_intersection_of_contained_descriptor(self):
        assert self.d1.intersect(self.d3) == self.d3

    def test_difference_of_mutex_sets_is_identity(self):
        assert self.d2.difference(self.d1, self.w) == self.d2
        assert self.d2.difference(self.d3, self.w) == self.d2

    def test_difference_carves_out_contained_worlds(self):
        result = self.d1.difference(self.d3, self.w)
        assert result == WSSet([{"j": 1, "b": 7}])

    def test_difference_of_contained_from_container_is_empty(self):
        assert self.d3.difference(self.d1, self.w).is_empty


class TestSetOperationSemantics:
    """Proposition 3.4: the symbolic operations match world-set semantics."""

    def test_union_semantics(self, two_variable_table):
        s1 = WSSet([{"j": 1}])
        s2 = WSSet([{"b": 4}])
        union = ws_union(s1, s2)
        assert worlds_of(union, two_variable_table) == (
            worlds_of(s1, two_variable_table) | worlds_of(s2, two_variable_table)
        )

    def test_intersect_semantics(self, two_variable_table):
        s1 = WSSet([{"j": 1}, {"b": 7}])
        s2 = WSSet([{"b": 4}, {"j": 7}])
        intersection = ws_intersect(s1, s2)
        assert worlds_of(intersection, two_variable_table) == (
            worlds_of(s1, two_variable_table) & worlds_of(s2, two_variable_table)
        )

    def test_difference_semantics(self, two_variable_table):
        s1 = WSSet([{"j": 1}, {"b": 7}])
        s2 = WSSet([{"j": 7, "b": 7}])
        difference = ws_difference(s1, s2, two_variable_table)
        assert worlds_of(difference, two_variable_table) == (
            worlds_of(s1, two_variable_table) - worlds_of(s2, two_variable_table)
        )

    def test_difference_of_single_descriptor_is_pairwise_mutex(
        self, two_variable_table
    ):
        # Proposition 3.4: carving one descriptor's world-set produces pairwise
        # mutex pieces (the property Section 6's WE method relies on).
        s1 = WSSet([EMPTY_DESCRIPTOR])
        s2 = WSSet([{"j": 7, "b": 7}, {"j": 1, "b": 4}])
        assert s1.difference(s2, two_variable_table).is_pairwise_mutex()

    def test_complement_of_example_23(self, two_variable_table):
        """Example 2.3: complement of {j→7, b→7} covers the other three worlds."""
        violations = WSSet([{"j": 7, "b": 7}])
        condition = violations.complement(two_variable_table)
        probability = brute_force_probability(condition, two_variable_table)
        assert probability == pytest.approx(0.44)
        worlds = worlds_of(condition, two_variable_table)
        assert tuple(sorted({"j": 7, "b": 7}.items())) not in worlds
        assert len(worlds) == 3

    def test_complement_of_universal_is_empty(self, two_variable_table):
        assert WSSet.universal().complement(two_variable_table).is_empty

    def test_complement_of_empty_is_universal(self, two_variable_table):
        complement = WSSet.empty().complement(two_variable_table)
        assert brute_force_probability(
            complement, two_variable_table
        ) == pytest.approx(1.0)


class TestLiftedProperties:
    def test_example_32_mutex_and_independence(self):
        d1, d2, d3, d4 = {"j": 1}, {"j": 7}, {"j": 1, "b": 4}, {"b": 4}
        assert WSSet([d1]).is_mutex_with(WSSet([d2]))
        assert WSSet([d1, d2]).is_independent_of(WSSet([d4]))
        # {d1,d2} vs {d3,d4}: not independent syntactically, but after dropping
        # the subsumed d3 the remaining {d4} is independent of {d1,d2}.
        assert not WSSet([d1, d2]).is_independent_of(WSSet([d3, d4]))
        simplified = WSSet([d3, d4]).without_subsumed()
        assert simplified == WSSet([d4])
        assert WSSet([d1, d2]).is_independent_of(simplified)

    def test_equivalence_via_difference(self, two_variable_table):
        s1 = WSSet([{"j": 1}, {"j": 7}])
        s2 = WSSet.universal()
        assert s1.is_equivalent_to(s2, two_variable_table)
        assert not s1.is_equivalent_to(WSSet([{"j": 1}]), two_variable_table)

    def test_without_singleton_variables(self):
        w = WorldTable()
        w.add_variable("s", {0: 1.0})
        w.add_variable("x", {1: 0.5, 2: 0.5})
        s = WSSet([{"s": 0, "x": 1}, {"x": 2}])
        simplified = s.without_singleton_variables(w)
        assert simplified == WSSet([{"x": 1}, {"x": 2}])

    def test_consistent_with(self):
        s = WSSet([{"x": 1}, {"x": 2, "y": 1}, {"y": 2}])
        assert s.consistent_with("x", 1) == WSSet([{"x": 1}, {"y": 2}])
        assert s.consistent_with("x", 2) == WSSet([{"x": 2, "y": 1}, {"y": 2}])

    def test_map_and_add(self):
        s = WSSet([{"x": 1}])
        extended = s.add({"y": 2})
        assert len(extended) == 2
        renamed = s.map(lambda d: d.renamed({"x": "x'"}))
        assert renamed == WSSet([{"x'": 1}])

    def test_naive_probability_upper_bound(self, two_variable_table):
        s = WSSet([{"j": 1}, {"j": 7}])
        assert s.naive_probability_upper_bound(two_variable_table) == pytest.approx(1.0)
        overlapping = WSSet([{"j": 1}, EMPTY_DESCRIPTOR])
        assert overlapping.naive_probability_upper_bound(
            two_variable_table
        ) == pytest.approx(1.2)
