"""Property-based tests (hypothesis) for the core invariants of the paper.

Strategies generate small random world tables, ws-sets and tuple descriptors;
the properties assert the cross-algorithm agreements that the paper's theorems
promise: Proposition 3.4 (set-operation semantics), Theorem 4.4 (ComputeTree
equivalence), Figure 7 / Theorem 6.3 (exact probability computation), and
Theorem 5.3 (conditioning preserves the renormalised instance distribution).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bruteforce import brute_force_probability, enumerate_worlds
from repro.core.conditioning import condition_wsset, conditioned_world_table
from repro.core.decompose import compute_tree
from repro.core.descriptors import WSDescriptor
from repro.core.elimination import descriptor_elimination_probability, mutex_normal_form
from repro.core.probability import ExactConfig, probability
from repro.core.wsset import WSSet
from repro.db.world_table import WorldTable
from repro.errors import ZeroProbabilityConditionError

MAX_EXAMPLES = 60


@st.composite
def world_tables(draw, min_variables: int = 2, max_variables: int = 4):
    """A small random world table with 2-3 alternatives per variable."""
    count = draw(st.integers(min_variables, max_variables))
    table = WorldTable()
    for index in range(count):
        domain_size = draw(st.integers(2, 3))
        weights = [draw(st.floats(0.05, 1.0)) for _ in range(domain_size)]
        table.add_variable(
            f"v{index}", {value: weight for value, weight in enumerate(weights)},
            normalize=True,
        )
    return table


@st.composite
def wssets(
    draw, table: WorldTable, max_descriptors: int = 5, allow_empty: bool = False
):
    """A random ws-set over ``table``."""
    variables = list(table.variables)
    descriptor_count = draw(st.integers(0 if allow_empty else 1, max_descriptors))
    descriptors = []
    for _ in range(descriptor_count):
        length = draw(st.integers(1, min(3, len(variables))))
        chosen = draw(
            st.lists(
                st.sampled_from(variables),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        descriptors.append(
            WSDescriptor(
                {v: draw(st.sampled_from(list(table.domain(v)))) for v in chosen}
            )
        )
    return WSSet(descriptors)


@st.composite
def instances(draw):
    table = draw(world_tables())
    ws_set = draw(wssets(table))
    return table, ws_set


def worlds_of(ws_set: WSSet, table: WorldTable) -> set:
    return {
        tuple(sorted(world.items()))
        for world, _ in enumerate_worlds(table)
        if ws_set.is_satisfied_by(world)
    }


class TestSetOperationProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_union_intersect_difference_semantics(self, data):
        table = data.draw(world_tables())
        s1 = data.draw(wssets(table))
        s2 = data.draw(wssets(table))
        w1, w2 = worlds_of(s1, table), worlds_of(s2, table)
        assert worlds_of(s1.union(s2), table) == w1 | w2
        assert worlds_of(s1.intersect(s2), table) == w1 & w2
        assert worlds_of(s1.difference(s2, table), table) == w1 - w2

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_complement_partitions_the_world_set(self, data):
        table = data.draw(world_tables())
        ws_set = data.draw(wssets(table))
        complement = ws_set.complement(table)
        assert probability(ws_set, table) + probability(
            complement, table
        ) == pytest.approx(1.0)
        assert worlds_of(ws_set, table) & worlds_of(complement, table) == set()

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_subsumption_removal_preserves_semantics(self, data):
        table = data.draw(world_tables())
        ws_set = data.draw(wssets(table))
        assert worlds_of(ws_set.without_subsumed(), table) == worlds_of(ws_set, table)


class TestExactProbabilityProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_all_exact_algorithms_agree_with_brute_force(self, data):
        table = data.draw(world_tables())
        ws_set = data.draw(wssets(table))
        expected = brute_force_probability(ws_set, table)
        assert probability(ws_set, table) == pytest.approx(expected)
        assert probability(ws_set, table, ExactConfig.ve("minmax")) == pytest.approx(expected)
        assert descriptor_elimination_probability(ws_set, table) == pytest.approx(
            expected
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_compute_tree_is_equivalent_and_valid(self, data):
        table = data.draw(world_tables())
        ws_set = data.draw(wssets(table))
        tree = compute_tree(ws_set, table)
        tree.validate(table)
        assert tree.probability(table) == pytest.approx(
            brute_force_probability(ws_set, table)
        )
        assert worlds_of(tree.to_wsset(), table) == worlds_of(ws_set, table)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_mutex_normal_form_property(self, data):
        table = data.draw(world_tables())
        ws_set = data.draw(wssets(table, max_descriptors=4))
        normal_form = mutex_normal_form(ws_set, table)
        assert normal_form.is_pairwise_mutex()
        assert worlds_of(normal_form, table) == worlds_of(ws_set, table)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_probability_is_monotone_under_union(self, data):
        table = data.draw(world_tables())
        s1 = data.draw(wssets(table))
        s2 = data.draw(wssets(table))
        union_probability = probability(s1.union(s2), table)
        assert union_probability >= probability(s1, table) - 1e-9
        assert (
            union_probability <= probability(s1, table) + probability(s2, table) + 1e-9
        )


class TestConditioningProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_theorem_53_tuple_marginals(self, data):
        table = data.draw(world_tables())
        condition = data.draw(wssets(table, max_descriptors=3))
        tuple_set = data.draw(wssets(table, max_descriptors=3))
        tuples = [(index, descriptor) for index, descriptor in enumerate(tuple_set)]
        try:
            result = condition_wsset(condition, tuples, table)
        except ZeroProbabilityConditionError:
            return
        combined = conditioned_world_table(table, result)

        condition_mass = brute_force_probability(condition, table)
        assert result.confidence == pytest.approx(condition_mass)

        for tag, descriptor in tuples:
            joint = brute_force_probability(
                WSSet([descriptor]).intersect(condition), table
            )
            expected = joint / condition_mass
            rewritten = WSSet(result.rewritten.get(tag, ()))
            actual = probability(rewritten, combined) if len(rewritten) else 0.0
            assert actual == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_new_variables_are_normalised(self, data):
        table = data.draw(world_tables())
        condition = data.draw(wssets(table, max_descriptors=3))
        try:
            result = condition_wsset(condition, [], table)
        except ZeroProbabilityConditionError:
            return
        for variable in result.delta_world_table.variables:
            weights = result.delta_world_table.distribution(variable).values()
            assert sum(weights) == pytest.approx(1.0)
            assert all(weight >= 0 for weight in weights)
