"""The blocking client facade over a sharded cluster.

:class:`ClusterSession` implements the same :class:`~repro.db.api.ConfidenceAPI`
surface as :class:`~repro.db.session.Session` and
:class:`~repro.server.client.ServerSession`, so code written against the
protocol — or obtained through :func:`repro.connect` — runs unchanged whether
it talks to an in-process engine, one server, or a cluster.

Internally the session owns a private asyncio event loop on a daemon thread
and submits every call to its :class:`~repro.cluster.coordinator.ClusterCoordinator`
with ``run_coroutine_threadsafe`` — cross-shard fan-out stays concurrent
while the caller blocks exactly like any other session.
"""

from __future__ import annotations

import asyncio
import threading
from typing import TYPE_CHECKING

from repro.cluster.coordinator import ClusterCoordinator

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterable, Sequence

    from repro.cluster.partition import ShardMap
    from repro.core.engine import EngineStats
    from repro.core.wsset import WSSet
    from repro.db.confidence import ConfidenceRow
    from repro.db.session import ConfidenceRequest, ConfidenceResult
    from repro.db.urelation import URelation
    from repro.server.client import RetryPolicy


class ClusterSession:
    """A blocking :class:`ConfidenceAPI` session over many shard servers.

    ``addresses`` are ``(host, port)`` pairs, one per shard, in shard-index
    order (the order the cluster was started with).  ``on_shard_failure``
    picks the degradation mode when a shard stays unreachable after
    retries: ``"fail"`` (default) raises
    :class:`~repro.errors.ShardUnavailableError`; ``"partial"`` lets
    :meth:`confidence_many` answer unaffected slots and place the error
    object in the affected positions.
    """

    def __init__(
        self,
        addresses: "Sequence[tuple[str, int]]",
        *,
        retry: "RetryPolicy | None" = None,
        request_timeout: float | None = None,
        on_shard_failure: str = "fail",
        seed: int | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-cluster-loop", daemon=True
        )
        self._thread.start()
        self._closed = False
        self._coordinator = ClusterCoordinator(
            addresses,
            retry=retry,
            request_timeout=request_timeout,
            on_shard_failure=on_shard_failure,
            seed=seed,
        )
        try:
            self._run(self._coordinator.start())
        except BaseException:
            self._shutdown()
            raise

    def _run(self, coro):
        if self._closed:
            raise RuntimeError("session is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ------------------------------------------------------------------
    # ConfidenceAPI
    # ------------------------------------------------------------------
    def query(self, request: "ConfidenceRequest") -> "ConfidenceResult":
        return self._run(self._coordinator.query(request))

    def confidence(
        self, target: "WSSet | URelation | str", method: str = "exact", **options
    ) -> "ConfidenceResult":
        return self._run(self._coordinator.confidence(target, method, **options))

    def confidence_many(
        self,
        targets: "Iterable[WSSet | URelation | str | ConfidenceRequest]",
        method: str = "exact",
        **options,
    ) -> "list[ConfidenceResult]":
        return self._run(
            self._coordinator.confidence_many(list(targets), method, **options)
        )

    def confidence_batch(
        self, relation: "URelation | str", method: str = "exact", **options
    ) -> "list[ConfidenceRow]":
        return self._run(
            self._coordinator.confidence_batch(relation, method, **options)
        )

    def certain_tuples(
        self, relation: "URelation | str", *, tolerance: float = 1e-9, **options
    ) -> list[tuple]:
        return self._run(
            self._coordinator.certain_tuples(
                relation, tolerance=tolerance, **options
            )
        )

    def possible_tuples(
        self, relation: "URelation | str", *, threshold: float = 0.0, **options
    ) -> "list[ConfidenceRow]":
        return self._run(
            self._coordinator.possible_tuples(
                relation, threshold=threshold, **options
            )
        )

    def what_if(
        self,
        target: "WSSet | URelation | str",
        variable,
        ps: "Iterable[float]",
        *,
        value=None,
        deadline_ms: float | None = None,
    ) -> list[float]:
        return self._run(
            self._coordinator.what_if(
                target, variable, list(ps), value=value, deadline_ms=deadline_ms
            )
        )

    def statistics(self) -> "EngineStats":
        return self._run(self._coordinator.statistics())

    @property
    def stats(self) -> "EngineStats":
        """Alias of :meth:`statistics`, matching the other session types."""
        return self.statistics()

    # ------------------------------------------------------------------
    # Cluster observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._run(self._coordinator.health())

    def server_stats(self) -> dict:
        return self._run(self._coordinator.server_stats())

    def metrics(self) -> dict:
        return self._run(self._coordinator.metrics_snapshot())

    @property
    def shard_map(self) -> "ShardMap":
        return self._coordinator.shard_map

    @property
    def addresses(self) -> list[str]:
        return self._coordinator.addresses

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self._coordinator.close(), self._loop
            ).result()
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self.addresses)} shards"
        return f"ClusterSession({state})"
