"""The ``conf()`` aggregate: tuple confidence computation over U-relations.

The confidence of a tuple ``t`` in (the result of a query on) a probabilistic
database is the combined probability weight of all possible worlds in which
``t`` is present.  On U-relations this is the probability of the ws-set of all
row descriptors carrying the value of ``t`` — exactly the quantity computed by
the exact engines of :mod:`repro.core.probability`.

The free functions here are the historical pre-session surface and are
**deprecated**: every call now emits a :class:`DeprecationWarning` and routes
through the unified :class:`~repro.db.api.ConfidenceAPI` — each opens a
transient :class:`~repro.db.session.Session` (or reuses one passed via
``session=``) and delegates to the session method of the same meaning.
Migrate by obtaining a session once — ``repro.connect(database)`` (or
``database.session()``) — and calling :meth:`~repro.db.session.Session.
confidence_batch`, :meth:`~repro.db.session.Session.certain_tuples`,
:meth:`~repro.db.session.Session.possible_tuples` or
:meth:`~repro.db.session.Session.confidence` directly; that also makes
repeated calls share one engine and memo cache instead of rebuilding them
per call.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.probability import ExactConfig, probability
from repro.db.urelation import URelation
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.session import Session
    from repro.db.world_table import WorldTable


@dataclass(frozen=True)
class ConfidenceRow:
    """One row of a ``select A..., conf() from ...`` result."""

    values: tuple
    confidence: float

    def as_dict(self, attributes: Sequence[str]) -> dict:
        """``attribute -> value`` mapping plus the ``conf`` column."""
        row = dict(zip(attributes, self.values))
        row["conf"] = self.confidence
        return row


def _session_for(
    world_table: "WorldTable",
    config: ExactConfig | None,
    session: "Session | None",
) -> "Session":
    """The session to compute through: the given one, or a transient one."""
    if session is not None:
        if config is not None:
            raise QueryError(
                "pass either config or session=, not both "
                "(the session already carries its config)"
            )
        if session.world_table is not world_table:
            raise QueryError(
                "the given session is bound to a different world table"
            )
        return session
    from repro.db.session import Session

    return Session(world_table, config)


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.db.confidence.{name}() is deprecated; obtain a session with "
        f"repro.connect(database) (or database.session()) and call "
        f"{replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _confidence_by_tuple(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    session: "Session | None" = None,
) -> list[ConfidenceRow]:
    """Non-warning implementation shared with internal callers."""
    return _session_for(world_table, config, session).confidence_batch(relation)


def confidence_by_tuple(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    session: "Session | None" = None,
) -> list[ConfidenceRow]:
    """Confidence of each distinct value tuple of ``relation``.

    .. deprecated:: use :meth:`~repro.db.session.Session.confidence_batch`
       via ``repro.connect(database)``.

    This closes the possible-worlds semantics: the result is an ordinary
    relation of value tuples with a numerical confidence column, as in the
    query ``select SSN, conf(SSN) from R where NAME = 'Bill'`` of the paper's
    introduction.  All tuples are solved through one shared engine; pass
    ``session=`` to share that engine across calls as well.
    """
    _deprecated("confidence_by_tuple", "session.confidence_batch(relation)")
    return _confidence_by_tuple(relation, world_table, config, session=session)


def _confidence_of_relation(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    session: "Session | None" = None,
) -> float:
    """Non-warning implementation shared with internal callers."""
    if session is not None:
        session = _session_for(world_table, config, session)
        return session.confidence(relation.descriptors()).value
    return probability(relation.descriptors(), world_table, config)


def confidence_of_relation(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    session: "Session | None" = None,
) -> float:
    """Confidence of the Boolean query "the relation is nonempty".

    .. deprecated:: use :meth:`~repro.db.session.Session.confidence` via
       ``repro.connect(database)``.

    This is ``P(π_∅(relation))``: the probability of the union of all row
    descriptors — the quantity measured throughout the paper's experiments.
    """
    _deprecated("confidence_of_relation", "session.confidence(relation)")
    return _confidence_of_relation(relation, world_table, config, session=session)


def certain_tuples(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    tolerance: float = 1e-9,
    session: "Session | None" = None,
) -> list[tuple]:
    """The value tuples present in *every* world (``where conf(...) = 1``).

    .. deprecated:: use :meth:`~repro.db.session.Session.certain_tuples` via
       ``repro.connect(database)``.

    This is the query from the introduction that motivates exact (rather than
    approximate) confidence computation: Monte-Carlo estimators independently
    underestimate each tuple's confidence and therefore miss certain answers
    with high probability.
    """
    _deprecated("certain_tuples", "session.certain_tuples(relation)")
    return _session_for(world_table, config, session).certain_tuples(
        relation, tolerance=tolerance
    )


def possible_tuples(
    relation: URelation,
    world_table: "WorldTable",
    config: ExactConfig | None = None,
    *,
    threshold: float = 0.0,
    session: "Session | None" = None,
) -> list[ConfidenceRow]:
    """Value tuples whose confidence exceeds ``threshold`` (default: possible at all).

    .. deprecated:: use :meth:`~repro.db.session.Session.possible_tuples` via
       ``repro.connect(database)``.
    """
    _deprecated("possible_tuples", "session.possible_tuples(relation)")
    return _session_for(world_table, config, session).possible_tuples(
        relation, threshold=threshold
    )
