"""Random small instances for unit tests and property-based tests.

These generators produce *small* world tables, ws-sets and tuple-independent
databases whose exact world distributions can still be enumerated by the
brute-force baseline, so that every algorithm in the library can be validated
against ground truth on thousands of random cases.
"""

from __future__ import annotations

import random

from repro.core.descriptors import WSDescriptor
from repro.core.wsset import WSSet
from repro.db.database import ProbabilisticDatabase
from repro.db.tuple_independent import tuple_independent_relation
from repro.db.world_table import WorldTable


def random_world_table(
    rng: random.Random,
    *,
    num_variables: int = 5,
    max_domain_size: int = 3,
    variable_prefix: str = "v",
) -> WorldTable:
    """A random world table with ``num_variables`` variables.

    Domain sizes are drawn between 2 and ``max_domain_size``; probabilities
    are random and normalised to sum to one.
    """
    world_table = WorldTable()
    for index in range(num_variables):
        domain_size = rng.randint(2, max(2, max_domain_size))
        weights = [rng.uniform(0.05, 1.0) for _ in range(domain_size)]
        distribution = {value: weight for value, weight in enumerate(weights)}
        world_table.add_variable(f"{variable_prefix}{index}", distribution, normalize=True)
    return world_table


def random_wsset(
    rng: random.Random,
    world_table: WorldTable,
    *,
    num_descriptors: int = 4,
    max_length: int = 3,
    allow_empty_descriptor: bool = False,
) -> WSSet:
    """A random ws-set over ``world_table``.

    Each descriptor assigns between 1 and ``max_length`` distinct variables
    (or possibly zero when ``allow_empty_descriptor`` is set) to random values
    of their domains.
    """
    variables = list(world_table.variables)
    descriptors = []
    for _ in range(num_descriptors):
        minimum = 0 if allow_empty_descriptor else 1
        length = rng.randint(minimum, min(max_length, len(variables)))
        chosen = rng.sample(variables, length)
        assignments = {
            variable: rng.choice(list(world_table.domain(variable)))
            for variable in chosen
        }
        descriptors.append(WSDescriptor(assignments))
    return WSSet(descriptors)


def random_tuple_independent_database(
    rng: random.Random,
    *,
    relation_name: str = "R",
    num_tuples: int = 6,
    num_attribute_values: int = 3,
) -> ProbabilisticDatabase:
    """A small random tuple-independent database with one binary relation.

    The relation has schema ``(A, B)`` with attribute values in
    ``range(num_attribute_values)``, so functional dependencies ``A -> B`` are
    frequently (but not always) violated — ideal for conditioning tests.
    """
    world_table = WorldTable()
    database = ProbabilisticDatabase(world_table)
    rows = []
    for _ in range(num_tuples):
        values = (
            rng.randrange(num_attribute_values),
            rng.randrange(num_attribute_values),
        )
        rows.append((values, rng.uniform(0.1, 0.9)))
    database.add_relation(
        tuple_independent_relation(
            relation_name, ("A", "B"), rows, world_table,
            variable_prefix=f"{relation_name.lower()}t",
        )
    )
    return database


def random_attribute_level_database(
    rng: random.Random,
    *,
    relation_name: str = "R",
    num_entities: int = 3,
    num_values: int = 3,
    max_alternatives: int = 3,
) -> ProbabilisticDatabase:
    """A small random attribute-level-uncertainty database (as in Figure 2).

    Each entity has one uncertain attribute modelled by a dedicated variable
    whose alternatives are values of the attribute; the relation has schema
    ``(ID, VALUE)`` with one row per alternative.
    """
    world_table = WorldTable()
    database = ProbabilisticDatabase(world_table)
    relation = database.create_relation(relation_name, ("ID", "VALUE"))
    for entity in range(num_entities):
        variable = f"e{entity}"
        alternative_count = rng.randint(2, max_alternatives)
        values = rng.sample(range(num_values * 2), alternative_count)
        weights = [rng.uniform(0.1, 1.0) for _ in values]
        distribution = dict(zip(values, weights))
        world_table.add_variable(variable, distribution, normalize=True)
        for value in values:
            relation.add(WSDescriptor({variable: value}), (entity, value))
    return database
