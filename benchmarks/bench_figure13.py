"""Figure 13: the minmax versus minlog variable-elimination heuristics.

Paper setting: 100k variables, r=4(2), s=4, ws-set sizes 50-1000, INDVE with
the two heuristics.  Scaled-down setting: 2000 variables, r=2, s=4, ws-set
sizes 50-300.  Expected shape (paper finding 5): minlog generally finds better
variable orders (fewer recursive calls / lower time) and is less sensitive to
data correlations, even though each estimate is slightly more expensive.
"""

from __future__ import annotations

import pytest

from repro.core.probability import ExactConfig, probability_with_stats
from repro.errors import BudgetExceededError
from repro.workloads.hard import HardCaseParameters

SIZES = (50, 100, 200, 300)
TIME_LIMIT = 20.0


def _parameters(size: int) -> HardCaseParameters:
    return HardCaseParameters(
        num_variables=2000, alternatives=2, descriptor_length=4,
        num_descriptors=size, seed=0,
    )


@pytest.mark.figure("13")
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("heuristic", ["minlog", "minmax"])
def bench_heuristic(benchmark, hard_instance_cache, size, heuristic):
    instance = hard_instance_cache(_parameters(size))
    config = ExactConfig.indve(heuristic, time_limit=TIME_LIMIT)

    def run():
        try:
            return probability_with_stats(instance.ws_set, instance.world_table, config)
        except BudgetExceededError:
            return None

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    if result is not None:
        benchmark.extra_info["confidence"] = result.probability
        benchmark.extra_info["recursive_calls"] = result.stats.recursive_calls
    else:
        benchmark.extra_info["timed_out"] = True
