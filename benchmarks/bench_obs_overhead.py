"""Tracing overhead guard: instrumented-but-disabled spans on the hot path.

The observability layer leaves its span calls compiled into every hot path;
when no tracer is active they cost one ``threading.local`` read returning a
shared no-op singleton.  This benchmark measures that cost on the Figure 11a
hot path by comparing:

* ``instrumented`` — the shipped code with tracing *disabled* (no active
  tracer; the default state of every computation);
* ``stubbed``      — the same computation with the span helpers monkeypatched
  to a zero-work stub, i.e. what the code would cost had the
  instrumentation never been added.

The guard (also asserted by ``tests/obs/test_overhead.py``) is that the
instrumented-but-disabled hot path stays within 3% of the stub.  Run
directly to print the comparison and write ``BENCH_obs_overhead.json``::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import contextlib
import json
import time
from pathlib import Path
from statistics import median

from repro.db.session import Session
from repro.obs import trace as trace_module
from repro.obs.trace import _NOOP_SPAN
from repro.workloads.hard import HardCaseParameters, generate_hard_instance

SIZE = 128
REPEATS = 15
REPORT_NAME = "BENCH_obs_overhead.json"
OVERHEAD_LIMIT = 0.03


def _stub_span(name, **attrs):
    """What a never-instrumented call site would cost (no thread-local read)."""
    return _NOOP_SPAN


@contextlib.contextmanager
def stubbed_tracing():
    """Replace the span helper with the zero-work stub, restoring on exit.

    ``repro.core.engine`` resolves ``_trace.span`` at call time, so patching
    the module attribute reaches every hot-path span site.
    """
    original = trace_module.span
    trace_module.span = _stub_span
    try:
        yield
    finally:
        trace_module.span = original


def _workload(size: int = SIZE):
    instance = generate_hard_instance(
        HardCaseParameters(
            num_variables=16, alternatives=2, descriptor_length=4,
            num_descriptors=size, seed=0,
        )
    )
    return instance.ws_set, instance.world_table


def _time_once(ws_set, world_table) -> float:
    # A fresh session per measurement: the cold exact computation through
    # Session → EngineHandle is the instrumented hot path (a warm repeat
    # would be one memo hit and measure nothing).
    session = Session(world_table)
    started = time.perf_counter()
    session.confidence(ws_set)
    return time.perf_counter() - started


def measure(repeats: int = REPEATS, size: int = SIZE) -> dict:
    """Interleaved best-of timings of the instrumented and stubbed hot path.

    Interleaved with the order alternating each round, so slow drift
    (thermal, frequency scaling, GC debt) cannot bias one variant; compared
    on minima, the least noise-contaminated observation of each variant.
    """
    ws_set, world_table = _workload(size)
    _time_once(ws_set, world_table)  # warm-up, excluded
    instrumented, stubbed = [], []
    for round_number in range(repeats):
        for variant in ((0, 1) if round_number % 2 else (1, 0)):
            if variant == 0:
                instrumented.append(_time_once(ws_set, world_table))
            else:
                with stubbed_tracing():
                    stubbed.append(_time_once(ws_set, world_table))
    instrumented_s = min(instrumented)
    stubbed_s = min(stubbed)
    overhead = instrumented_s / stubbed_s - 1.0
    return {
        "workload": {
            "figure": "11a", "num_variables": 16, "alternatives": 2,
            "descriptor_length": 4, "num_descriptors": size,
            "repeats": repeats,
        },
        "instrumented_best_seconds": instrumented_s,
        "stubbed_best_seconds": stubbed_s,
        "instrumented_median_seconds": median(instrumented),
        "stubbed_median_seconds": median(stubbed),
        "overhead_fraction": overhead,
        "limit_fraction": OVERHEAD_LIMIT,
        "within_limit": overhead < OVERHEAD_LIMIT,
    }


def main(report_path: "str | Path | None" = None) -> Path:
    result = measure()
    if report_path is None:
        report_path = Path(__file__).resolve().parent.parent / REPORT_NAME
    path = Path(report_path)
    path.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(
        f"instrumented {result['instrumented_best_seconds'] * 1e3:.3f} ms, "
        f"stubbed {result['stubbed_best_seconds'] * 1e3:.3f} ms (best of "
        f"{result['workload']['repeats']}), "
        f"overhead {result['overhead_fraction'] * 100:+.2f}% "
        f"(limit {OVERHEAD_LIMIT * 100:.0f}%)"
    )
    print(f"wrote {path}")
    return path


if __name__ == "__main__":
    main()
