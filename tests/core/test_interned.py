"""Tests for the interned decomposition engine (integer packing, iterative core).

The central guarantee is cross-engine agreement: on random instances the
interned engine, the legacy dict engine and brute-force world enumeration all
compute the same probability (within 1e-9), for INDVE and VE and every
heuristic.  The unit tests additionally pin the packed representation and the
interned counterparts of the shared ws-set helpers.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bruteforce import brute_force_probability
from repro.core.conditioning import condition_wsset, conditioned_world_table
from repro.core.interned import (
    InternedEngine,
    InternedSpace,
    connected_components_interned,
    count_occurrences_interned,
    deduplicate_interned,
    remove_subsumed_interned,
    split_on_variable_interned,
)
from repro.core.probability import (
    ExactConfig,
    make_engine,
    probability,
    probability_of_descriptors,
    probability_with_stats,
)
from repro.core.wsset import WSSet
from repro.db.world_table import WorldTable
from repro.errors import BudgetExceededError, UnknownVariableError
from repro.workloads.random_instances import random_world_table, random_wsset

ALL_HEURISTICS = ("minlog", "minmax", "first", "frequency", "random")


@pytest.fixture
def space(figure3_world_table) -> InternedSpace:
    return figure3_world_table.interned()


class TestInternedSpace:
    def test_pack_unpack_round_trip(self, figure3_world_table, space):
        for variable in figure3_world_table.variables:
            for value in figure3_world_table.domain(variable):
                packed = space.pack(variable, value)
                assert space.unpack(packed) == (variable, value)
                assert space.weight(packed) == figure3_world_table.probability(
                    variable, value
                )

    def test_packed_descriptors_are_sorted_tuples(self, space):
        interned = space.intern_items([("y", 1), ("x", 2)])
        assert interned == tuple(sorted(interned))
        assert space.externalize(interned) == {"x": 2, "y": 1}

    def test_unknown_variable_raises(self, space):
        with pytest.raises(UnknownVariableError):
            space.intern_items([("nope", 1)])

    def test_out_of_domain_value_marks_descriptor_unsatisfiable(self, space):
        assert space.intern_items([("x", 99)]) is None
        # ... and such descriptors are dropped from interned ws-sets, which
        # leaves the probability unchanged (no world satisfies them).
        assert space.intern_descriptors([{"x": 99}, {"x": 1}]) == [
            space.intern_items([("x", 1)])
        ]

    def test_space_is_cached_and_invalidated_on_mutation(self):
        table = WorldTable()
        table.add_variable("a", {0: 0.5, 1: 0.5})
        first = table.interned()
        assert table.interned() is first
        table.add_variable("b", {0: 0.3, 1: 0.7})
        second = table.interned()
        assert second is not first
        assert second.variable_ids.keys() == {"a", "b"}

    def test_domain_size_by_id(self, figure3_world_table, space):
        for variable in figure3_world_table.variables:
            variable_id = space.variable_ids[variable]
            assert space.domain_size(variable_id) == figure3_world_table.domain_size(
                variable
            )


class TestInternedHelpers:
    def test_deduplicate(self, space):
        d1 = space.intern_items([("x", 1)])
        d2 = space.intern_items([("y", 2)])
        assert deduplicate_interned([d1, d2, d1]) == [d1, d2]

    def test_remove_subsumed(self, space):
        small = space.intern_items([("x", 1)])
        large = space.intern_items([("x", 1), ("y", 2)])
        other = space.intern_items([("z", 1)])
        assert remove_subsumed_interned([large, small, other]) == [small, other]

    def test_remove_subsumed_first_duplicate_wins(self, space):
        a = space.intern_items([("x", 1), ("y", 2)])
        b = space.intern_items([("y", 2), ("x", 1)])
        assert a == b  # sorting canonicalises the packing
        assert remove_subsumed_interned([a, b]) == [a]

    def test_connected_components(self, space):
        d1 = space.intern_items([("x", 1), ("y", 2)])
        d2 = space.intern_items([("y", 1)])
        d3 = space.intern_items([("u", 1), ("v", 2)])
        components = connected_components_interned([d1, d2, d3], space.shift)
        assert sorted(len(component) for component in components) == [1, 2]

    def test_connected_components_single(self, space):
        d1 = space.intern_items([("x", 1), ("y", 2)])
        d2 = space.intern_items([("y", 1)])
        descriptors = [d1, d2]
        assert connected_components_interned(descriptors, space.shift) == [descriptors]

    def test_split_on_variable(self, space):
        x_id = space.variable_ids["x"]
        d1 = space.intern_items([("x", 1), ("y", 2)])
        d2 = space.intern_items([("x", 2)])
        d3 = space.intern_items([("z", 1)])
        by_value, unmentioned = split_on_variable_interned(
            [d1, d2, d3], x_id, space.shift
        )
        assert by_value == {
            space.value_ids[x_id][1]: [space.intern_items([("y", 2)])],
            space.value_ids[x_id][2]: [()],
        }
        assert unmentioned == [d3]

    def test_count_occurrences(self, space):
        d1 = space.intern_items([("x", 1), ("y", 2)])
        d2 = space.intern_items([("x", 1)])
        occurrences = count_occurrences_interned([d1, d2], space.shift, space.mask)
        x_id, y_id = space.variable_ids["x"], space.variable_ids["y"]
        assert occurrences[x_id] == {space.value_ids[x_id][1]: 2}
        assert occurrences[y_id] == {space.value_ids[y_id][2]: 1}


class TestEngineBasics:
    def test_example_47_is_the_default_engine(self, figure3_wsset, figure3_world_table):
        assert ExactConfig().engine == "interned"
        assert probability(figure3_wsset, figure3_world_table) == pytest.approx(0.7578)

    def test_unknown_engine_rejected(self, figure3_wsset, figure3_world_table):
        with pytest.raises(ValueError, match="unknown engine"):
            probability(
                figure3_wsset, figure3_world_table, ExactConfig(engine="turbo")
            )

    def test_effective_memoize_defaults(self):
        assert ExactConfig().effective_memoize is True
        assert ExactConfig(engine="legacy").effective_memoize is False
        assert ExactConfig(memoize=False).effective_memoize is False
        assert ExactConfig(engine="legacy", memoize=True).effective_memoize is True

    def test_with_engine(self):
        config = ExactConfig().with_engine("legacy")
        assert config.engine == "legacy"
        assert config.use_independent_partitioning

    def test_empty_and_universal_wssets(self, figure3_world_table):
        assert probability(WSSet.empty(), figure3_world_table) == 0.0
        assert probability(WSSet.universal(), figure3_world_table) == 1.0

    def test_deep_elimination_needs_no_recursion_limit(self):
        """A 1300-variable chain would overflow CPython's default recursion
        limit (1000) in a naive recursion; the iterative core does not
        recurse, so no ``sys.setrecursionlimit`` hack is involved."""
        table = WorldTable()
        count = 1300
        for index in range(count):
            table.add_variable(index, {0: 0.5, 1: 0.5})
        # One long chain of pairwise-overlapping descriptors: a single
        # connected component that forces one elimination per level.
        descriptors = [{i: 0, i + 1: 0} for i in range(count - 1)]
        ws_set = WSSet(descriptors)
        value = probability(ws_set, table, ExactConfig(heuristic="first"))
        assert value == pytest.approx(1.0)  # the union covers ~all worlds

    def test_budget_time_limit_fires(self):
        rng = random.Random(3)
        world_table = random_world_table(rng, num_variables=8, max_domain_size=3)
        ws_set = random_wsset(rng, world_table, num_descriptors=12, max_length=3)
        with pytest.raises(BudgetExceededError):
            probability(ws_set, world_table, ExactConfig(time_limit=1e-12))

    def test_engine_reuse_shares_the_memo_cache(self, figure3_world_table):
        engine = make_engine(figure3_world_table, ExactConfig())
        descriptors = [
            {"x": 1, "y": 1, "z": 1},
            {"x": 2, "y": 2, "z": 1},
            {"x": 3, "y": 1, "z": 2},
            {"x": 1, "y": 2, "z": 2},
            {"x": 2, "y": 1, "u": 1},
            {"x": 3, "y": 2, "u": 2},
        ]
        first = engine.compute(descriptors)
        filled = len(engine.cache)
        second = engine.compute(descriptors)
        assert first == pytest.approx(second)
        assert filled > 0
        assert engine.cache_hits > 0  # the second run reuses cached sub-ws-sets

    def test_probability_of_descriptors_matches_wsset_probability(
        self, figure3_wsset, figure3_world_table
    ):
        descriptors = [dict(d.items()) for d in figure3_wsset]
        assert probability_of_descriptors(
            descriptors, figure3_world_table
        ) == pytest.approx(probability(figure3_wsset, figure3_world_table))


class TestCrossEngineAgreement:
    """Satellite property test: interned == legacy == brute force (1e-9)."""

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("method", ["indve", "ve"])
    def test_random_instances_all_heuristics(self, seed, method):
        rng = random.Random(4200 + seed)
        world_table = random_world_table(rng, num_variables=6, max_domain_size=3)
        ws_set = random_wsset(rng, world_table, num_descriptors=8, max_length=3)
        expected = brute_force_probability(ws_set, world_table)
        use_ip = method == "indve"
        for heuristic in ALL_HEURISTICS:
            interned = probability(
                ws_set,
                world_table,
                ExactConfig(
                    use_independent_partitioning=use_ip, heuristic=heuristic
                ),
            )
            legacy = probability(
                ws_set,
                world_table,
                ExactConfig(
                    use_independent_partitioning=use_ip,
                    heuristic=heuristic,
                    engine="legacy",
                ),
            )
            assert interned == pytest.approx(expected, abs=1e-9)
            assert legacy == pytest.approx(expected, abs=1e-9)
            assert interned == pytest.approx(legacy, abs=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_memoization_does_not_change_results(self, seed):
        rng = random.Random(8800 + seed)
        world_table = random_world_table(rng, num_variables=6, max_domain_size=3)
        ws_set = random_wsset(rng, world_table, num_descriptors=8, max_length=3)
        expected = brute_force_probability(ws_set, world_table)
        for memoize in (None, True, False):
            value = probability(ws_set, world_table, ExactConfig(memoize=memoize))
            assert value == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_subsumption_knobs_agree(self, seed):
        rng = random.Random(6600 + seed)
        world_table = random_world_table(rng, num_variables=5, max_domain_size=3)
        ws_set = random_wsset(rng, world_table, num_descriptors=7, max_length=3)
        expected = brute_force_probability(ws_set, world_table)
        for config in (
            ExactConfig(simplify_subsumed=False),
            ExactConfig(subsumption_every_step=True),
            ExactConfig(simplify_subsumed=False, engine="legacy"),
            ExactConfig(subsumption_every_step=True, engine="legacy"),
        ):
            assert probability(ws_set, world_table, config) == pytest.approx(
                expected, abs=1e-9
            )


class TestConditioningWithInternedDelegation:
    """Conditioning delegates confidence subproblems to one shared engine."""

    @pytest.mark.parametrize("seed", range(8))
    def test_conditioning_engines_agree(self, seed):
        rng = random.Random(9900 + seed)
        world_table = random_world_table(rng, num_variables=5, max_domain_size=3)
        condition = random_wsset(rng, world_table, num_descriptors=4, max_length=2)
        tuple_set = random_wsset(rng, world_table, num_descriptors=3, max_length=2)
        tuples = list(enumerate(tuple_set))
        condition_mass = brute_force_probability(condition, world_table)
        if condition_mass == 0.0:
            pytest.skip("zero-probability condition")
        results = {}
        for engine in ("interned", "legacy"):
            result = condition_wsset(
                condition, tuples, world_table, ExactConfig(engine=engine)
            )
            results[engine] = result
            assert result.confidence == pytest.approx(condition_mass, abs=1e-9)
            combined = conditioned_world_table(world_table, result)
            for tag, descriptor in tuples:
                joint = brute_force_probability(
                    WSSet([descriptor]).intersect(condition), world_table
                )
                rewritten = WSSet(result.rewritten.get(tag, ()))
                actual = (
                    probability(rewritten, combined) if len(rewritten) else 0.0
                )
                assert actual == pytest.approx(joint / condition_mass, abs=1e-9)
        assert results["interned"].confidence == pytest.approx(
            results["legacy"].confidence, abs=1e-9
        )

    def test_delegate_engine_is_shared_across_subproblems(self, figure3_world_table):
        condition = WSSet([{"x": 1}, {"x": 2, "y": 1}, {"u": 1, "v": 1}, {"u": 2}])
        result = condition_wsset(
            condition, [("t", {"y": 2})], figure3_world_table, ExactConfig()
        )
        assert result.confidence == pytest.approx(
            brute_force_probability(condition, figure3_world_table)
        )


class TestStatsAndMemo:
    def test_interned_stats_count_nodes(self):
        world_table = WorldTable()
        for index in range(9):
            world_table.add_variable(index, {0: 0.5, 1: 0.5})
        # A connected 8-descriptor chain: too large for the closed form at the
        # root (forcing a ⊕-node) but small enough to end in closed forms.
        ws_set = WSSet([{i: 0, i + 1: 0} for i in range(8)])
        result = probability_with_stats(ws_set, world_table)
        assert result.stats.recursive_calls >= 1
        assert result.stats.variable_nodes >= 1
        assert result.stats.closed_form_nodes >= 1

    def test_memo_hits_on_repeated_subproblems(self):
        world_table = WorldTable()
        for name in ("a", "b", "c", "d", "e", "f", "g"):
            world_table.add_variable(name, {0: 0.5, 1: 0.5})
        # Both a-branches leave the identical residual problem over b..g.
        shared = [
            {"b": 0, "c": 0, "d": 0},
            {"c": 1, "d": 1, "e": 0},
            {"d": 0, "e": 1, "f": 0},
            {"e": 0, "f": 1, "g": 0},
            {"f": 0, "g": 1, "b": 1},
            {"g": 0, "b": 0, "c": 1},
        ]
        descriptors = [{"a": 0, **d} for d in shared] + [
            {"a": 1, **d} for d in shared
        ]
        ws_set = WSSet(descriptors)
        # The "first" heuristic eliminates `a` at the root, so both branches
        # reduce to exactly the same sub-ws-set: the second one must hit.
        engine = InternedEngine(world_table, ExactConfig(heuristic="first"))
        value = engine.compute_wsset(ws_set)
        assert value == pytest.approx(brute_force_probability(ws_set, world_table))
        assert engine.cache_hits > 0
