"""Confidence server: the session service of :mod:`repro.db.session` on a wire.

The server (:class:`~repro.server.server.ConfidenceServer`) exposes one
shared :class:`~repro.db.database.ProbabilisticDatabase` — one long-lived
engine, one interned id space, one memo cache — to many clients over a
length-prefixed JSON TCP protocol (:mod:`repro.server.protocol`).  Concurrent
connections pipeline their requests through a
:class:`~repro.db.session.SessionPool`, so every client benefits from the
sub-problems any other client has already solved.

The client library (:mod:`repro.server.client`) mirrors the local
:class:`~repro.db.session.Session` API over a socket: code written against a
session runs unchanged against :func:`connect`.  ``python -m repro.server``
starts a standalone server (see :mod:`repro.server.__main__` for the flags).

Serving is fault-tolerant end to end (protocol v3): request deadlines with
graceful degradation to approximate answers, bounded admission with load
shedding (:class:`~repro.errors.OverloadedError` + ``retry_after_ms``),
drain-phase shutdown, and client-side :class:`RetryPolicy` / request
timeouts restricted to provably idempotent operations
(:data:`IDEMPOTENT_OPS`).
"""

from repro.server.client import (
    AsyncServerSession,
    RetryPolicy,
    ServerSession,
    connect,
    connect_async,
)
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_PORT,
    IDEMPOTENT_OPS,
    PROTOCOL_VERSION,
    error_code,
    exception_for,
)
from repro.server.server import DEFAULT_GRACE, ConfidenceServer

__all__ = [
    "AsyncServerSession",
    "ConfidenceServer",
    "DEFAULT_GRACE",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_PORT",
    "IDEMPOTENT_OPS",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "ServerSession",
    "connect",
    "connect_async",
    "error_code",
    "exception_for",
]
