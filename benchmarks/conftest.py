"""Shared fixtures for the benchmark suite.

Instances are generated once per session and shared across benchmarks; the
parameters are scaled down from the paper's so that the full suite finishes in
minutes on a laptop while preserving the qualitative shape of every figure
(see EXPERIMENTS.md for the mapping and the measured results).
"""

from __future__ import annotations

import pytest

from repro.workloads.hard import HardCaseParameters, generate_hard_instance
from repro.workloads.tpch import TPCHGenerator


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): paper figure a benchmark belongs to")


@pytest.fixture(scope="session")
def tpch_small():
    """TPC-H-like instance at the smallest benchmark scale factor."""
    return TPCHGenerator(scale_factor=0.0002, seed=0).generate()


@pytest.fixture(scope="session")
def tpch_medium():
    """TPC-H-like instance at the middle benchmark scale factor."""
    return TPCHGenerator(scale_factor=0.0005, seed=0).generate()


@pytest.fixture(scope="session")
def hard_instance_cache():
    """Memoised access to #P-hard instances keyed by their parameters."""
    cache: dict[HardCaseParameters, object] = {}

    def get(parameters: HardCaseParameters):
        if parameters not in cache:
            cache[parameters] = generate_hard_instance(parameters)
        return cache[parameters]

    return get
