"""End-to-end tracing: session → engine → (process pool) span trees.

The acceptance criterion of the observability PR: a traced ``confidence``
request returns a span tree whose phase self-times sum to within 10% of the
request's wall time — including spans merged back from process-pool workers.
The process-pool case runs with ``workers=1`` deliberately: concurrent
workers' spans overlap in time, and overlapping children make self-times
under-count by construction.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.wsset import WSSet
from repro.db.database import ProbabilisticDatabase
from repro.db.session import ConfidenceRequest, ConfidenceResult, Session
from repro.obs.trace import iter_spans
from repro.workloads.hard import HardCaseParameters, generate_hard_instance


def hard_instance(seed=0):
    return generate_hard_instance(
        HardCaseParameters(
            num_variables=16,
            alternatives=2,
            descriptor_length=4,
            num_descriptors=64,
            seed=seed,
        )
    )


def component_rich_database(seed=7, variables=40, descriptors=60):
    """A database whose query decomposes into many ⊗-components, so the
    process pool genuinely fans out (and ships spans back)."""
    rng = random.Random(seed)
    database = ProbabilisticDatabase()
    names = []
    for index in range(variables):
        name = f"x{index}"
        database.world_table.add_boolean(name, rng.uniform(0.05, 0.6))
        names.append(name)
    ws_set = WSSet(
        {names[rng.randrange(variables)]: True for _ in range(rng.randrange(1, 4))}
        for _ in range(descriptors)
    )
    return database, ws_set


def self_time_sum(payload):
    return sum(node["self_seconds"] for node in iter_spans(payload))


class TestSerialTracing:
    def test_untraced_request_has_no_trace(self):
        instance = hard_instance()
        session = Session(instance.world_table)
        result = session.confidence(instance.ws_set)
        assert result.trace is None
        assert session.last_trace is None

    def test_traced_request_returns_engine_phase_tree(self):
        instance = hard_instance()
        session = Session(instance.world_table)
        result = session.confidence(instance.ws_set, trace=True)
        payload = result.trace
        assert payload is not None
        assert payload["name"] == "request"
        assert payload["attrs"]["method"] == "exact"
        spans = {node["name"]: node for node in iter_spans(payload)}
        # Serial sessions evaluate in-line: one engine span carrying the
        # phase counter deltas (decompose/dispatch spans are the parallel
        # path's, covered in TestProcessPoolTracing).
        assert "engine_evaluate" in spans
        assert spans["engine_evaluate"]["attrs"]["frames"] >= 1
        assert session.last_trace == payload
        # The trace is pure JSON — it must survive the wire unchanged.
        assert json.loads(json.dumps(payload)) == payload

    def test_self_times_sum_to_wall_time(self):
        instance = hard_instance()
        session = Session(instance.world_table)
        result = session.confidence(instance.ws_set, trace=True)
        assert result.wall_time > 0.0
        assert self_time_sum(result.trace) == pytest.approx(
            result.wall_time, rel=0.1
        )

    def test_tracing_does_not_change_the_answer(self):
        instance = hard_instance()
        plain = Session(instance.world_table).confidence(instance.ws_set)
        traced = Session(instance.world_table).confidence(
            instance.ws_set, trace=True
        )
        assert traced.value == plain.value

    def test_session_level_trace_flag_traces_every_request(self):
        instance = hard_instance()
        session = Session(instance.world_table, trace=True)
        result = session.confidence(instance.ws_set)
        assert result.trace is not None
        assert session.last_trace == result.trace

    def test_karp_luby_trace_has_sampling_span(self):
        instance = hard_instance()
        session = Session(instance.world_table, seed=3)
        result = session.confidence(
            instance.ws_set, method="karp_luby", epsilon=0.2, delta=0.1, trace=True
        )
        spans = {node["name"]: node for node in iter_spans(result.trace)}
        assert "karp_luby_rounds" in spans
        assert spans["karp_luby_rounds"]["attrs"]["iterations"] == result.iterations

    def test_request_codec_round_trips_trace_flag(self):
        instance = hard_instance()
        request = ConfidenceRequest(instance.ws_set, "exact", trace=True)
        decoded = ConfidenceRequest.from_payload(request.to_payload())
        assert decoded.trace is True
        plain = ConfidenceRequest(instance.ws_set, "exact")
        assert "trace" not in plain.to_payload()

    def test_request_codec_rejects_non_bool_trace(self):
        instance = hard_instance()
        with pytest.raises(ValueError):
            ConfidenceRequest(instance.ws_set, "exact", trace=1)
        payload = ConfidenceRequest(instance.ws_set, "exact").to_payload()
        payload["trace"] = "yes"
        with pytest.raises(ValueError):
            ConfidenceRequest.from_payload(payload)

    def test_result_codec_carries_trace(self):
        instance = hard_instance()
        session = Session(instance.world_table)
        result = session.confidence(instance.ws_set, trace=True)
        rebuilt = ConfidenceResult.from_payload(result.to_payload())
        assert rebuilt.trace == result.trace


class TestProcessPoolTracing:
    def test_worker_spans_merge_back_and_self_times_sum(self):
        database, ws_set = component_rich_database()
        serial = database.session().confidence(ws_set)
        session = database.session(executor="process", workers=1)
        try:
            result = session.confidence(ws_set, trace=True)
            assert result.value == serial.value  # bit-identical across the pool
            payload = result.trace
            remote = [
                node for node in iter_spans(payload) if node.get("remote")
            ]
            assert remote, "no spans came back from the worker"
            assert all(node["name"] == "worker_component" for node in remote)
            assert all(node["attrs"]["descriptors"] >= 1 for node in remote)
            assert all(node["attrs"]["frames"] >= 1 for node in remote)
            assert self_time_sum(payload) == pytest.approx(
                result.wall_time, rel=0.1
            )
            # The workers' per-component histogram merged into the parent's
            # registry alongside the parent's own instruments.
            histograms = session.handle.metrics.snapshot()["histograms"]
            assert histograms["repro_worker_component_seconds"]["count"] == len(
                remote
            )
        finally:
            session.close()
