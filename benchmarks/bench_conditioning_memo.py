"""Conditioning-subproblem memo: repeated asserts and sibling-heavy branches.

Two measurements, both on #P-hard (Figure 11a-style) conditioning material,
each run memo-on against the ``ExactConfig(condition_memoize=False)``
ablation:

1. **Repeated assert** (cross-call): the same what-if assert evaluated K
   times over an unchanged prior through one shared
   :class:`~repro.core.conditioning.ConditioningMemo` — the handle-level
   situation of a session replaying an assert while exploring what-ifs.
   After the first (cold) call every repetition answers from the root memo
   entry, so the memoised total must be at least **2x** faster than the
   ablation; the floor is enforced unconditionally, since the memo is a
   single-threaded win and needs no spare cores.

2. **Sibling branches** (within one run): a fan-out variable ``w`` paired
   with a fixed hard residual condition, so every ⊕-branch of ``w`` leaves
   the *identical* subproblem — the cross-branch hits of the Davis-Putnam
   recursion itself.  One cold memoised run against one unmemoised run;
   the memoised run must show at least ``fanout - 1`` sibling hits.  Both
   runs disable ``prune_unrelated``: with pruning on, the heuristic only
   eliminates tuple-sharing variables and hands unrelated residuals to the
   (already memoised) confidence engine, so the pure cross-branch effect
   would be masked by an older cache.

Every memoised result is asserted **bit-identical** to the unmemoised one —
same confidence, same rewritten descriptors, same new-variable weights —
before any timing is trusted.

Run directly to print the table and record ``BENCH_conditioning_memo.json``::

    PYTHONPATH=src python benchmarks/bench_conditioning_memo.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core.conditioning import ConditioningMemo, condition_wsset
from repro.core.probability import ExactConfig
from repro.core.wsset import WSSet
from repro.db.world_table import WorldTable
from repro.workloads.hard import HardCaseParameters, generate_hard_instance

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_NAME = "BENCH_conditioning_memo.json"

MEMO_OFF = ExactConfig(condition_memoize=False)
TARGET_SPEEDUP = 2.0

#: Figure 11a-style material for the condition ws-set (quick mode shrinks it).
NUM_VARIABLES = 14
ALTERNATIVES = 2
DESCRIPTOR_LENGTH = 4
CONDITION_DESCRIPTORS = 48
TUPLES = 12
REPETITIONS = 12

SIBLING_FANOUT = 6
SIBLING_TUPLES = 8


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def signature(result):
    """Everything observable about a conditioning result, for exact ``==``."""
    delta = result.delta_world_table
    return (
        result.confidence,
        {tag: list(descs) for tag, descs in result.rewritten.items()},
        {variable: delta.distribution(variable) for variable in delta.variables},
        dict(result.variable_sources),
    )


def build_assert_workload(num_descriptors: int, tuples: int):
    """A hard condition plus tuple descriptors over the same variables."""
    instance = generate_hard_instance(
        HardCaseParameters(
            num_variables=NUM_VARIABLES,
            alternatives=ALTERNATIVES,
            descriptor_length=DESCRIPTOR_LENGTH,
            num_descriptors=num_descriptors + tuples,
            seed=0,
        )
    )
    descriptors = list(instance.ws_set)
    condition = WSSet(descriptors[:num_descriptors])
    tagged = [
        (f"t{index}", descriptor)
        for index, descriptor in enumerate(descriptors[num_descriptors:])
    ]
    return instance.world_table, condition, tagged


def build_sibling_workload(
    fanout: int, num_descriptors: int, num_variables: int, descriptor_length: int
):
    """A fan-out variable whose branches all leave the identical residual.

    Each descriptor pairs one alternative of ``w`` with one member of a
    fixed hard residual set that never mentions ``w``: whichever branch the
    recursion takes, the remaining subproblem is the same.
    """
    instance = generate_hard_instance(
        HardCaseParameters(
            num_variables=num_variables,
            alternatives=ALTERNATIVES,
            descriptor_length=descriptor_length,
            num_descriptors=num_descriptors + SIBLING_TUPLES,
            seed=1,
        )
    )
    world_table = WorldTable()
    world_table.add_variable("w", {j: 1.0 / fanout for j in range(fanout)})
    for variable in instance.world_table.variables:
        world_table.add_variable(
            variable, instance.world_table.distribution(variable)
        )
    descriptors = list(instance.ws_set)
    residual = descriptors[:num_descriptors]
    condition = WSSet(
        [{"w": j, **dict(part.items())} for j in range(fanout) for part in residual]
    )
    tagged = [
        (f"t{index}", descriptor)
        for index, descriptor in enumerate(descriptors[num_descriptors:])
    ]
    return world_table, condition, tagged


def measure_repeated_assert(repetitions: int, num_descriptors: int) -> dict:
    world_table, condition, tuples = build_assert_workload(
        num_descriptors, TUPLES
    )
    memo = ConditioningMemo()

    started = time.perf_counter()
    baselines = [
        condition_wsset(condition, tuples, world_table, MEMO_OFF)
        for _ in range(repetitions)
    ]
    off_seconds = time.perf_counter() - started

    started = time.perf_counter()
    memoised = [
        condition_wsset(condition, tuples, world_table, memo=memo)
        for _ in range(repetitions)
    ]
    on_seconds = time.perf_counter() - started

    reference = signature(baselines[0])
    for result in baselines[1:] + memoised:
        assert signature(result) == reference, "memoised assert diverged"
    assert memo.hits >= repetitions - 1, (
        f"expected root hits on every repetition after the first: "
        f"{memo.hits} hits for {repetitions} calls"
    )
    return {
        "repetitions": repetitions,
        "condition_descriptors": num_descriptors,
        "tuples": TUPLES,
        "memo_off_seconds": round(off_seconds, 4),
        "memo_on_seconds": round(on_seconds, 4),
        "speedup": round(off_seconds / on_seconds, 2),
        "memo": {
            "hits": memo.hits,
            "misses": memo.misses,
            "evictions": memo.evictions,
            "entries": len(memo),
            "bytes_estimate": memo.bytes_estimate(),
        },
        "bit_identical": True,
    }


def measure_sibling_branches(
    fanout: int, num_descriptors: int, num_variables: int, descriptor_length: int
) -> dict:
    world_table, condition, tuples = build_sibling_workload(
        fanout, num_descriptors, num_variables, descriptor_length
    )

    started = time.perf_counter()
    baseline = condition_wsset(
        condition, tuples, world_table, MEMO_OFF, prune_unrelated=False
    )
    off_seconds = time.perf_counter() - started

    memo = ConditioningMemo()
    started = time.perf_counter()
    memoised = condition_wsset(
        condition, tuples, world_table, memo=memo, prune_unrelated=False
    )
    on_seconds = time.perf_counter() - started

    assert signature(memoised) == signature(baseline), "sibling run diverged"
    assert memo.hits >= fanout - 1, (
        f"expected >= {fanout - 1} sibling hits, saw {memo.hits}"
    )
    return {
        "fanout": fanout,
        "residual_descriptors": num_descriptors,
        "num_variables": num_variables,
        "descriptor_length": descriptor_length,
        "prune_unrelated": False,
        "memo_off_seconds": round(off_seconds, 4),
        "memo_on_seconds": round(on_seconds, 4),
        "speedup": round(off_seconds / on_seconds, 2),
        "memo": {"hits": memo.hits, "misses": memo.misses},
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> Path:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workload for CI smoke (the 2x floor still holds)",
    )
    parser.add_argument("--out", type=Path, default=REPO_ROOT / REPORT_NAME)
    arguments = parser.parse_args(argv)

    quick = arguments.quick
    repetitions = 6 if quick else REPETITIONS
    condition_descriptors = 32 if quick else CONDITION_DESCRIPTORS
    sibling_descriptors = 12 if quick else 20
    sibling_variables = 10 if quick else 12
    sibling_length = 3 if quick else 4

    print(
        f"1) repeated assert: {repetitions} calls over "
        f"{condition_descriptors} condition descriptors, memo on vs off"
    )
    repeated = measure_repeated_assert(repetitions, condition_descriptors)
    print(
        f"   off {repeated['memo_off_seconds']:.2f}s  on "
        f"{repeated['memo_on_seconds']:.2f}s  -> {repeated['speedup']}x "
        f"({repeated['memo']['hits']} hits, bit-identical)"
    )

    print(
        f"2) sibling branches: fanout {SIBLING_FANOUT} over "
        f"{sibling_descriptors} residual descriptors, one cold run each"
    )
    sibling = measure_sibling_branches(
        SIBLING_FANOUT, sibling_descriptors, sibling_variables, sibling_length
    )
    print(
        f"   off {sibling['memo_off_seconds']:.2f}s  on "
        f"{sibling['memo_on_seconds']:.2f}s  -> {sibling['speedup']}x "
        f"({sibling['memo']['hits']} hits, bit-identical)"
    )

    # The memo is a single-threaded win: the floor holds regardless of how
    # many cores the machine has, so it is always enforced.
    assert repeated["speedup"] >= TARGET_SPEEDUP, (
        f"repeated-assert target missed: {repeated['speedup']}x < "
        f"{TARGET_SPEEDUP}x"
    )
    print(f"speedup floor ok: {repeated['speedup']}x >= {TARGET_SPEEDUP}x")

    payload = {
        "title": "Conditioning-subproblem memo vs the unmemoised recursion",
        "quick": quick,
        "machine": {"usable_cpus": usable_cpus()},
        "target": {
            "speedup": TARGET_SPEEDUP,
            "scenario": "repeated_assert",
            "enforced": True,
            "note": (
                "the memo needs no spare cores, so the floor is enforced "
                "on every machine"
            ),
        },
        "workload": {
            "figure": "11a-style",
            "num_variables": NUM_VARIABLES,
            "alternatives": ALTERNATIVES,
            "descriptor_length": DESCRIPTOR_LENGTH,
        },
        "repeated_assert": repeated,
        "sibling_branches": sibling,
    }
    arguments.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {arguments.out}")
    return arguments.out


if __name__ == "__main__":
    main()
