"""TPC-H-style confidence computation (the Figure 10 scenario), via SQL and algebra.

Generates a small tuple-independent TPC-H-like probabilistic database, opens
one confidence :class:`~repro.db.session.Session` over it, and runs the
paper's two Boolean queries Q1 and Q2 both through the relational-algebra API
and through the SQL front end — every confidence computation (exact INDVE
with the minlog heuristic, the Karp-Luby approximation, the SQL executor)
goes through the same session, so the interned representation and memo cache
are shared across all of them.  This is the session-API version of what used
to be free-function calls (``probability(...)``, ``execute(db, sql)``); those
still work, but a session is the idiomatic way to issue several ``conf()``
queries against one database.

Run with::

    python examples/tpch_confidence.py [scale_factor]
"""

from __future__ import annotations

import sys
import time

from repro import ExactConfig
from repro.workloads.tpch import TPCHGenerator, query_q1, query_q2

Q1_SQL = """
    select true
    from customer c, orders o, lineitem l
    where c.c_mktsegment = 'BUILDING'
      and c.c_custkey = o.o_custkey
      and o.o_orderkey = l.l_orderkey
      and o.o_orderdate > '1995-03-15'
"""

Q2_SQL = """
    select true
    from lineitem
    where l_shipdate between '1994-01-01' and '1996-01-01'
      and l_discount between 0.05 and 0.08
      and l_quantity < 24
"""


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0005
    print(f"generating TPC-H-like instance at scale factor {scale_factor} ...")
    instance = TPCHGenerator(scale_factor=scale_factor, seed=42).generate()
    db = instance.database
    print(
        f"  customers={instance.customer_count}  orders={instance.orders_count}  "
        f"lineitems={instance.lineitem_count}  variables={instance.variable_count}"
    )
    # One session for the whole script: exact, approximate and SQL execution
    # all share a single engine handle (interned space + memo cache).
    session = db.session(ExactConfig.indve("minlog"), seed=7)

    for label, algebra_query, sql in (
        ("Q1 (3-way join)", query_q1, Q1_SQL),
        ("Q2 (selection)", query_q2, Q2_SQL),
    ):
        print(f"\n== {label} ==")
        started = time.perf_counter()
        answer = algebra_query(db)
        print(f"  answer ws-set size: {len(answer)} "
              f"(built in {time.perf_counter() - started:.2f}s)")

        exact = session.confidence(answer)
        print(f"  exact confidence (indve/minlog): {exact.value:.6f}   "
              f"[{exact.wall_time:.3f}s]")

        approximate = session.confidence(
            answer, method="karp_luby", epsilon=0.1, delta=0.01
        )
        print(
            f"  Karp-Luby (ε=0.1, δ=0.01):        {approximate.value:.6f}   "
            f"[{approximate.wall_time:.3f}s, {approximate.iterations} iterations]"
        )

        started = time.perf_counter()
        result = session.execute(sql)
        sql_seconds = time.perf_counter() - started
        print(f"  via SQL front end:                {result.confidence:.6f}   "
              f"[{sql_seconds:.3f}s, ws-set size {len(result.ws_set)}]")
        assert abs(result.confidence - exact.value) < 1e-9, "SQL and algebra must agree"

    stats = session.statistics()
    print(
        f"\nsession totals: {stats.computations} exact computations, "
        f"{stats.frames} frames, {stats.memo_hits} memo hits, "
        f"{stats.wall_time:.3f}s in the engine"
    )


if __name__ == "__main__":
    main()
