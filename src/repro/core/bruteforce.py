"""Brute-force probability computation by world enumeration.

This is the ground-truth baseline: iterate over all possible worlds (total
valuations of the world table) and sum the probabilities of those represented
by some descriptor of the input ws-set.  The paper implemented the same
algorithm but reports that its timing is "extremely bad"; here it serves as
the reference implementation against which every other algorithm (INDVE, VE,
WE, Karp-Luby, conditioning) is validated in the test suite.

Two practical refinements keep it usable for tests:

* only the variables actually mentioned by the ws-set need to be enumerated —
  all other variables are marginalised out by independence;
* posterior (conditioned) distributions over *instances* can be computed for
  validating the conditioning algorithm (see
  :func:`brute_force_posterior_worlds`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import TYPE_CHECKING

from repro.core.wsset import WSSet
from repro.errors import ZeroProbabilityConditionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.world_table import Value, Variable, WorldTable
else:
    Variable = object
    Value = object


def enumerate_worlds(
    world_table: "WorldTable",
    variables: Iterable[Variable] | None = None,
) -> Iterator[tuple[dict, float]]:
    """Yield ``(world, probability)`` for every total valuation of ``variables``.

    ``variables`` defaults to all variables of the world table.  Probabilities
    are products of the per-assignment probabilities (variable independence).
    """
    for world in world_table.iter_worlds(variables):
        yield world, world_table.world_probability(world)


def world_satisfies(world: Mapping[Variable, Value], ws_set: WSSet) -> bool:
    """True iff ``world`` extends at least one descriptor of ``ws_set``."""
    return ws_set.is_satisfied_by(world)


def brute_force_probability(
    ws_set: WSSet,
    world_table: "WorldTable",
    *,
    restrict_to_mentioned_variables: bool = True,
) -> float:
    """Exact probability of ``ws_set`` by explicit world enumeration.

    With ``restrict_to_mentioned_variables`` (the default) only worlds over the
    variables occurring in the ws-set are enumerated; the remaining variables
    are independent of the event and integrate out to one.
    """
    if ws_set.is_empty:
        return 0.0
    if ws_set.contains_universal:
        return 1.0
    variables: Iterable[Variable] | None
    if restrict_to_mentioned_variables:
        mentioned = ws_set.variables()
        variables = [v for v in world_table.variables if v in mentioned]
    else:
        variables = None
    total = 0.0
    for world, world_probability in enumerate_worlds(world_table, variables):
        if ws_set.is_satisfied_by(world):
            total += world_probability
    return total


def brute_force_conditional_probability(
    event: WSSet,
    condition: WSSet,
    world_table: "WorldTable",
) -> float:
    """``P(event | condition)`` by world enumeration (Bayesian conditioning)."""
    mentioned = event.variables() | condition.variables()
    variables = [v for v in world_table.variables if v in mentioned]
    joint = 0.0
    condition_mass = 0.0
    for world, world_probability in enumerate_worlds(world_table, variables):
        if condition.is_satisfied_by(world):
            condition_mass += world_probability
            if event.is_satisfied_by(world):
                joint += world_probability
    if condition_mass == 0.0:
        raise ZeroProbabilityConditionError(
            "conditioning event has probability zero; the posterior is undefined"
        )
    return joint / condition_mass


def brute_force_posterior_worlds(
    condition: WSSet,
    world_table: "WorldTable",
    variables: Iterable[Variable] | None = None,
) -> list[tuple[dict, float]]:
    """The posterior distribution over worlds given ``condition``.

    Returns ``(world, posterior probability)`` pairs for the worlds satisfying
    the condition, renormalised to sum to one — precisely what Theorem 5.3 says
    the conditioning algorithm must preserve at the level of instances.
    """
    pairs = [
        (world, world_probability)
        for world, world_probability in enumerate_worlds(world_table, variables)
        if condition.is_satisfied_by(world)
    ]
    mass = sum(p for _, p in pairs)
    if mass == 0.0:
        raise ZeroProbabilityConditionError(
            "conditioning event has probability zero; the posterior is undefined"
        )
    return [(world, p / mass) for world, p in pairs]
